package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/graph/gen"
	"graphsys/internal/hypo"
	"graphsys/internal/pregel"
	"graphsys/internal/serve"
)

// This file declares the experiments' quantitative claims as typed hypotheses
// (internal/hypo): every "note:" under a table that asserts a direction or a
// bound is restated here as a machine-checked Type 1 invariant or a seeded
// Type 2 comparison, runnable via `graphbench -check`. Type 1 claims parse
// the rendered table (the same artifact a reader sees); Type 2 claims re-run
// the underlying workload per seed, since a single table row cannot witness a
// statistical effect.

// DeterminismHypothesis is the invariant EVERY experiment must satisfy: two
// runs in the same process produce byte-identical rendered tables. Columns
// are metered work, never wall time, so any diff is a real nondeterminism bug
// (map iteration, scheduling-dependent accounting, unseeded RNG).
func DeterminismHypothesis(e Experiment) hypo.Hypothesis {
	return hypo.Hypothesis{
		ID:    e.ID + "/deterministic",
		Claim: "two runs produce byte-identical table output",
		Type:  hypo.Deterministic,
		Check: func() []hypo.Finding {
			a, b := render(e.Run()), render(e.Run())
			f := hypo.Finding{Label: e.ID, Pass: a == b}
			if f.Pass {
				f.Got = fmt.Sprintf("%d identical bytes", len(a))
			} else {
				f.Got = firstDiff(a, b)
			}
			return []hypo.Finding{f}
		},
	}
}

func render(t *Table) string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d differs: %q vs %q", i+1, strings.TrimSpace(la[i]), strings.TrimSpace(lb[i]))
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}

// checker accumulates Type-1 findings over a rendered table's cells.
type checker struct {
	t        *Table
	findings []hypo.Finding
}

// num parses the leading numeric value of cell (row, col), tolerating the
// tables' unit suffixes ("1.5x", "$0.0042", "2538.8x"). A malformed cell
// records a failing finding — a gate that cannot read its input must fail.
func (c *checker) num(row, col int) float64 {
	if row >= len(c.t.Rows) || col >= len(c.t.Header) {
		c.findings = append(c.findings, hypo.Finding{
			Label: fmt.Sprintf("cell(%d,%d)", row, col), Pass: false,
			Got: fmt.Sprintf("table is %d rows × %d cols", len(c.t.Rows), len(c.t.Header)),
		})
		return -1
	}
	s := strings.TrimPrefix(strings.TrimSpace(c.t.Rows[row][col]), "$")
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		c.findings = append(c.findings, hypo.Finding{
			Label: fmt.Sprintf("cell(%d,%d)", row, col), Pass: false,
			Got: fmt.Sprintf("cannot parse %q as a number", c.t.Rows[row][col]),
		})
		return -1
	}
	return v
}

func (c *checker) expect(label string, pass bool, format string, args ...any) {
	c.findings = append(c.findings, hypo.Finding{Label: label, Pass: pass, Got: fmt.Sprintf(format, args...)})
}

// tableClaim builds a Type-1 hypothesis whose findings come from one run of
// the experiment's own table.
func tableClaim(id, claim string, run func() *Table, check func(c *checker)) hypo.Hypothesis {
	return hypo.Hypothesis{
		ID: id, Claim: claim, Type: hypo.Deterministic,
		Check: func() []hypo.Finding {
			c := &checker{t: run()}
			check(c)
			return c.findings
		},
	}
}

func init() {
	registerClaims("tab1-fsm", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("tab1-fsm/worker-invariance",
			"mined pattern sets are identical at 1, 4 and 8 workers", Table1FSM,
			func(c *checker) {
				for r := range c.t.Rows {
					for _, col := range []int{3, 4} {
						got := c.t.Rows[r][col]
						c.expect(fmt.Sprintf("%s %s", c.t.Rows[r][0], c.t.Header[col]),
							got == "true", "%s", got)
					}
				}
			})}
	})

	registerClaims("tab1-online", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("tab1-online/light-latency",
			"shared-pool admission cuts light-query latency ≥10× without speeding up the heavy query", Table1OnlineQuery,
			func(c *checker) {
				concHeavy, concMean, concMax := c.num(0, 1), c.num(0, 2), c.num(0, 3)
				seqHeavy, seqMean, seqMax := c.num(1, 1), c.num(1, 2), c.num(1, 3)
				c.expect("mean light latency", concMean*10 <= seqMean,
					"concurrent %.1f vs sequential %.1f", concMean, seqMean)
				c.expect("max light latency", concMax <= seqMax,
					"concurrent %.1f vs sequential %.1f", concMax, seqMax)
				c.expect("heavy not sped up", concHeavy >= seqHeavy,
					"concurrent %.1f vs sequential %.1f (PS cannot beat a dedicated pool)", concHeavy, seqHeavy)
			})}
	})

	registerClaims("claim-tri", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("claim-tri/shuffle-floor",
			"MR shuffle bytes exceed the serial counter's total merge-op budget on every graph", ClaimTriangle,
			func(c *checker) {
				for r := range c.t.Rows {
					bytes, ops := c.num(r, 3), c.num(r, 4)
					c.expect(c.t.Rows[r][0], bytes >= ops,
						"%.0f shuffle bytes vs %.0f merge ops", bytes, ops)
				}
			})}
	})

	registerClaims("claim-tlav", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("claim-tlav/round-envelope",
			"HashMin rounds stay ≤2·log2|V| with per-round messages ≤ |V|+|E|", ClaimTLAV,
			func(c *checker) {
				for r := range c.t.Rows {
					rounds, logv, ratio := c.num(r, 2), c.num(r, 3), c.num(r, 4)
					c.expect(fmt.Sprintf("|V|=%s rounds", c.t.Rows[r][0]), rounds <= 2*logv,
						"%.0f rounds vs log2|V|=%.1f", rounds, logv)
					c.expect(fmt.Sprintf("|V|=%s msgs/round", c.t.Rows[r][0]), ratio <= 1.0,
						"%.2f × (V+E) per round", ratio)
				}
			})}
	})

	registerClaims("tab2-pipeline", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("tab2-pipeline/speedup",
			"pipelined makespan beats sequential on every batch count, improving as batches grow", Table2Pipelining,
			func(c *checker) {
				prev := 0.0
				for r := range c.t.Rows {
					seq, pip := c.num(r, 1), c.num(r, 2)
					c.expect(fmt.Sprintf("batches=%s", c.t.Rows[r][0]), pip < seq,
						"pipelined %.1f vs sequential %.1f", pip, seq)
					speedup := seq / pip
					c.expect(fmt.Sprintf("batches=%s monotone", c.t.Rows[r][0]), speedup >= prev,
						"speedup %.2fx (previous %.2fx)", speedup, prev)
					prev = speedup
				}
			})}
	})

	registerClaims("ext-quegel", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("ext-quegel/barrier-sharing",
			"batched rounds are independent of the query count; sequential rounds grow with it", ExtQuegel,
			func(c *checker) {
				// rows come in (batched, sequential) pairs per query count
				firstBatched := c.num(0, 2)
				for r := 0; r+1 < len(c.t.Rows); r += 2 {
					nq := c.t.Rows[r][0]
					br, sr := c.num(r, 2), c.num(r+1, 2)
					bm, sm := c.num(r, 3), c.num(r+1, 3)
					c.expect(fmt.Sprintf("q=%s rounds", nq), br <= sr, "batched %.0f vs sequential %.0f", br, sr)
					c.expect(fmt.Sprintf("q=%s constant rounds", nq), br == firstBatched,
						"batched %.0f vs %.0f at the smallest batch", br, firstBatched)
					c.expect(fmt.Sprintf("q=%s messages", nq), bm <= sm,
						"combining holds batched messages (%.0f) at the sequential level (%.0f)", bm, sm)
				}
				last := len(c.t.Rows) - 2
				br, sr := c.num(last, 2), c.num(last+1, 2)
				c.expect("largest batch round collapse", sr >= 10*br,
					"sequential %.0f vs batched %.0f rounds", sr, br)
			})}
	})

	registerClaims("ext-blogel", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("ext-blogel/block-collapse",
			"block-centric CC needs fewer rounds and messages than vertex-centric on every graph", ExtBlogel,
			func(c *checker) {
				for r := 0; r+1 < len(c.t.Rows); r += 2 {
					name := c.t.Rows[r][0]
					vr, br := c.num(r, 2), c.num(r+1, 2)
					vm, bm := c.num(r, 3), c.num(r+1, 3)
					c.expect(name+" rounds", br < vr, "block %.0f vs vertex %.0f", br, vr)
					c.expect(name+" messages", bm < vm, "block %.0f vs vertex %.0f", bm, vm)
				}
				// the high-diameter graph is the headline: rounds collapse ≥50×
				vr, br := c.num(0, 2), c.num(1, 2)
				c.expect("path-graph collapse", vr >= 50*br, "vertex %.0f vs block %.0f rounds", vr, br)
			})}
	})

	registerClaims("ft-recover", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("ft-recover/exact-recovery",
			"every faulty run recovers to the exact fault-free loss, replaying < interval rounds", FTRecover,
			func(c *checker) {
				// row 0 is the fault-free reference; remaining rows crash
				for r := 1; r < len(c.t.Rows); r++ {
					label := c.t.Rows[r][0]
					c.expect(label+" exact", c.t.Rows[r][7] == "true", "%s", c.t.Rows[r][7])
					replayed := c.num(r, 3)
					if strings.HasPrefix(label, "never") {
						c.expect(label+" full restart", replayed == 8,
							"replayed %.0f of the 8 pre-crash rounds", replayed)
					} else {
						interval := c.num(r, 0)
						c.expect(label+" replay bound", replayed < interval,
							"replayed %.0f rounds with checkpoints every %.0f", replayed, interval)
					}
				}
			})}
	})

	registerClaims("abl-split", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("abl-split/work-conservation",
			"splitting preserves the result and total work while raising the parallelism bound", AblationTaskSplit,
			func(c *checker) {
				cliques, ticks := c.num(0, 1), c.num(0, 5)
				prevBound := 0.0
				for r := range c.t.Rows {
					label := "budget=" + c.t.Rows[r][0]
					c.expect(label+" cliques", c.num(r, 1) == cliques, "%s (reference %.0f)", c.t.Rows[r][1], cliques)
					c.expect(label+" total ticks", c.num(r, 5) == ticks, "%s (reference %.0f)", c.t.Rows[r][5], ticks)
					bound := c.num(r, 6)
					c.expect(label+" bound grows", bound > prevBound,
						"parallelism bound %.2fx (previous %.2fx)", bound, prevBound)
					prevBound = bound
					if r > 0 {
						budget, maxTask := c.num(r, 0), c.num(r, 4)
						c.expect(label+" max task", maxTask <= budget,
							"largest task %.0f ticks vs budget %.0f", maxTask, budget)
					}
				}
			})}
	})

	registerClaims("tab2-serverless", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("tab2-serverless/crossover",
			"serverless advantage crosses 1× at the startup-amortisation point and grows with per-batch compute", Table2Serverless,
			func(c *checker) {
				first, last := c.num(0, 4), c.num(len(c.t.Rows)-1, 4)
				c.expect("GPU wins tiny batches", first < 1,
					"advantage %.2fx at %s", first, c.t.Rows[0][0])
				c.expect("serverless wins big batches", last >= 5,
					"advantage %.2fx at %s", last, c.t.Rows[len(c.t.Rows)-1][0])
				prev := 0.0
				for r := range c.t.Rows {
					adv := c.num(r, 4)
					c.expect(fmt.Sprintf("monotone at %s", c.t.Rows[r][0]), adv > prev,
						"advantage %.2fx (previous %.2fx)", adv, prev)
					prev = adv
				}
			})}
	})

	registerClaims("abl-combiner", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{{
			ID:            "abl-combiner/message-reduction",
			Claim:         "the min-combiner cuts HashMin messages >2× at every graph size",
			Type:          hypo.Statistical,
			Seeds:         []int64{1000, 2000, 4000}, // samples are graph sizes, not RNG seeds
			MinEffect:     2.0,
			LowerIsBetter: true,
			Unit:          "messages",
			Measure: func(n int64) (hypo.Sample, error) {
				g := gen.BarabasiAlbert(int(n), 6, n)
				prog := hashMinProgram()
				with, err := pregel.Run(g, prog, pregel.Config{Workers: 4})
				if err != nil {
					return hypo.Sample{}, err
				}
				prog.Combine = nil
				without, err := pregel.Run(g, prog, pregel.Config{Workers: 4})
				if err != nil {
					return hypo.Sample{}, err
				}
				return hypo.Sample{
					Baseline:  float64(without.Net.Messages),
					Treatment: float64(with.Net.Messages),
				}, nil
			},
		}}
	})

	registerClaims("serve-sweep", func() []hypo.Hypothesis {
		params := hypo.DefaultServingParams()
		// rows are policy-major over serve.Policies × params.Lambdas
		row := func(pol serve.Policy, li int) int {
			for pi, p := range serve.Policies {
				if p == pol {
					return pi*len(params.Lambdas) + li
				}
			}
			return -1
		}
		last := len(params.Lambdas) - 1
		const colCompleted, colRejected, colP50, colGoodput = 2, 3, 5, 7
		return []hypo.Hypothesis{
			tableClaim("serve-sweep/overload-discipline",
				"below saturation goodput tracks offered load within 10%; beyond it every policy sheds (rejections > 0) and holds goodput ≥ half its sweep peak", ServeSweep,
				func(c *checker) {
					for pi, pol := range serve.Policies {
						for li, lambda := range params.Lambdas[:2] { // λ=0.2, 0.4: well below saturation
							good, offered := c.num(pi*len(params.Lambdas)+li, colGoodput), lambda*1000
							c.expect(fmt.Sprintf("%s λ=%.1f tracks offered", pol, lambda),
								good >= 0.9*offered && good <= 1.1*offered,
								"goodput %.1f vs offered %.1f per kilotick", good, offered)
						}
						var peak float64
						for li := range params.Lambdas {
							if g := c.num(pi*len(params.Lambdas)+li, colGoodput); g > peak {
								peak = g
							}
						}
						r := pi*len(params.Lambdas) + last
						rej, good := c.num(r, colRejected), c.num(r, colGoodput)
						c.expect(fmt.Sprintf("%s sheds at λ=%.1f", pol, params.OverloadLambda()),
							rej > 0, "%.0f rejections", rej)
						c.expect(fmt.Sprintf("%s goodput holds at λ=%.1f", pol, params.OverloadLambda()),
							good >= peak/2, "goodput %.1f vs sweep peak %.1f", good, peak)
					}
				}),
			tableClaim("serve-sweep/srw-beats-fifo",
				"beyond saturation shortest-remaining-work sustains ≥1.2× FIFO goodput, and its p50 never exceeds FIFO's at any load", ServeSweep,
				func(c *checker) {
					fifoGood := c.num(row(serve.FIFO, last), colGoodput)
					srwGood := c.num(row(serve.ShortestRemaining, last), colGoodput)
					c.expect("overload goodput", srwGood >= 1.2*fifoGood,
						"srw %.1f vs fifo %.1f (%.2fx)", srwGood, fifoGood, srwGood/fifoGood)
					for li, lambda := range params.Lambdas {
						fp, sp := c.num(row(serve.FIFO, li), colP50), c.num(row(serve.ShortestRemaining, li), colP50)
						c.expect(fmt.Sprintf("p50 at λ=%.1f", lambda), sp <= fp,
							"srw %.0f vs fifo %.0f ticks", sp, fp)
					}
					fifoDone := c.num(row(serve.FIFO, last), colCompleted)
					srwDone := c.num(row(serve.ShortestRemaining, last), colCompleted)
					c.expect("overload completions", srwDone > fifoDone,
						"srw %.0f vs fifo %.0f of %d offered", srwDone, fifoDone, params.Queries)
				}),
			{
				ID: "serve-sweep/srw-goodput-seeds",
				Claim: "the overload goodput win of shortest-remaining-work over FIFO is not a seed artifact: " +
					"≥1.2× on every seed of the standard set",
				Type:      hypo.Statistical,
				MinEffect: 1.2,
				Unit:      "completions/kilotick",
				Measure: func(seed int64) (hypo.Sample, error) {
					lambda := params.OverloadLambda()
					fifo, err := hypo.MeasureServingPoint(params, serve.FIFO, lambda, seed)
					if err != nil {
						return hypo.Sample{}, err
					}
					srw, err := hypo.MeasureServingPoint(params, serve.ShortestRemaining, lambda, seed)
					if err != nil {
						return hypo.Sample{}, err
					}
					return hypo.Sample{Baseline: fifo.Goodput, Treatment: srw.Goodput}, nil
				},
			},
		}
	})

	registerClaims("tab2-quant", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{{
			ID:            "tab2-quant/grad-compression",
			Claim:         "4-bit error-compensated quantisation moves >3× fewer gradient bytes than fp32",
			Type:          hypo.Statistical,
			MinEffect:     3.0, // ideal is 8×; per-row fp32 scale/offset overhead keeps the honest floor at ~3.5×
			LowerIsBetter: true,
			Unit:          "gradient bytes",
			Measure: func(seed int64) (hypo.Sample, error) {
				task := gnn.HardSyntheticCommunityTask(300, 3, 0.3, 17)
				base := gnndist.TrainerConfig{Workers: 4, TimeBudget: 30, Seed: seed}
				fp32, err := gnndist.TrainSync(task, base)
				if err != nil {
					return hypo.Sample{}, err
				}
				q := base
				q.QuantBits = 4
				q.QuantCompensate = true
				q4, err := gnndist.TrainSync(task, q)
				if err != nil {
					return hypo.Sample{}, err
				}
				return hypo.Sample{Baseline: float64(fp32.GradBytes), Treatment: float64(q4.GradBytes)}, nil
			},
		}}
	})
}
