package experiments

import (
	"fmt"

	"graphsys/internal/cluster"
	"graphsys/internal/gnndist"
)

func init() {
	register("ft-recover", "Fault tolerance: recovery cost vs checkpoint interval under an injected mid-training crash", FTRecover)
}

// FTRecover runs synchronous GNN training with one injected worker crash and
// sweeps the checkpoint interval, printing the classic fault-tolerance trade:
// frequent checkpoints cost snapshot volume up front but bound the rounds
// re-executed after rollback, while checkpoint-free runs pay nothing until
// the crash forces a full restart. Every faulty run recovers to the EXACT
// fault-free loss (the checkpoint carries weights, optimizer moments, RNG
// positions and error-feedback residuals), so the only observable cost of the
// crash is the metered recovery work — which is what the table shows.
func FTRecover() *Table {
	const crashAt = 8
	task := table2Task()
	base := gnndist.TrainerConfig{Workers: 4, TimeBudget: 15, Seed: 7}
	clean := must2(gnndist.TrainSync(task, base))

	t := &Table{ID: "ft-recover", Title: fmt.Sprintf("Recovery cost vs checkpoint interval (sync GNN training, worker crash at round %d)", crashAt),
		Header: []string{"ckpt every", "ckpts", "ckpt bytes", "replayed rounds", "replayed time", "retry+replay bytes", "final loss", "= fault-free"}}
	t.AddRow("(no crash)", 0, 0, 0, "0.000", 0, fmt.Sprintf("%.6f", clean.Loss), "-")
	for _, every := range []int{0, 1, 2, 5, 10} {
		cfg := base
		cfg.CheckpointEvery = every
		cfg.RunOptions = cluster.RunOptions{
			Trace:  true,
			Faults: &cluster.FaultPlan{CrashAtRound: crashAt, CrashWorker: 1},
		}
		res := must2(gnndist.TrainSync(task, cfg))
		r := res.Trace.Recovery
		label := fmt.Sprint(every)
		if every == 0 {
			label = "never (restart)"
		}
		t.AddRow(label, r.Checkpoints, r.CheckpointBytes, r.RecoveredRounds,
			fmt.Sprintf("%.3f", r.RecoveryTime), res.Net.Bytes-clean.Net.Bytes,
			fmt.Sprintf("%.6f", res.Loss), res.Loss == clean.Loss && res.Steps == clean.Steps)
	}
	t.Note("a crash at round %d replays crashRound−lastCheckpoint rounds: tight intervals trade checkpoint volume for replay work", crashAt)
	t.Note("recovery is exact, not approximate: every faulty run commits the same %d steps and the same final loss as the fault-free run", clean.Steps)
	t.Note("recovery accounting comes from obs.Trace.Recovery (cluster.RecoveryStats), exported as JSON by `graphbench -trace`")
	return t
}
