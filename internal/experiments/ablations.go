package experiments

import (
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
	"graphsys/internal/tthinker"
)

func init() {
	register("abl-split", "Ablation: G-thinker budget-based task splitting on/off", AblationTaskSplit)
	register("abl-combiner", "Ablation: Pregel sender-side combiner on/off", AblationCombiner)
	register("abl-ordering", "Ablation: degeneracy vs natural vertex ordering for clique search", AblationOrdering)
}

// AblationTaskSplit shows what budget-based task splitting buys: it bounds
// the size of the largest indivisible task (MaxTaskTicks), which is the
// lower bound on makespan no amount of work stealing can beat. Without
// splitting, one dense root task dominates; with a budget, every task stays
// near the budget and stealing can balance perfectly.
func AblationTaskSplit() *Table {
	t := &Table{ID: "abl-split", Title: "Task splitting on maximal cliques (dense ER(150, p=0.5))",
		Header: []string{"budget", "cliques", "tasks", "splits", "max task (ticks)", "total ticks", "parallelism bound"}}
	b := graph.NewBuilder(150, false)
	r := newDetRand(2)
	for u := 0; u < 150; u++ {
		for v := u + 1; v < 150; v++ {
			if r.float() < 0.5 {
				b.AddEdge(graph.V(u), graph.V(v))
			}
		}
	}
	g := b.Build()
	for _, budget := range []int64{0, 10000, 1000, 100} {
		res, stats := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 8, Budget: budget})
		name := "off"
		if budget > 0 {
			name = itoa(budget)
		}
		bound := float64(stats.Ticks) / float64(stats.MaxTaskTicks)
		t.AddRow(name, res.Count, stats.Tasks, stats.Splits, stats.MaxTaskTicks, stats.Ticks,
			fmtF(bound)+"x")
	}
	t.Note("parallelism bound = total work / largest indivisible task; splitting raises it from a handful to the worker count and beyond")
	return t
}

// newDetRand is a tiny deterministic generator so the ablation does not
// depend on math/rand ordering.
type detRand struct{ s uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: seed} }

func (d *detRand) float() float64 {
	d.s ^= d.s << 13
	d.s ^= d.s >> 7
	d.s ^= d.s << 17
	return float64(d.s%1_000_000) / 1_000_000
}

func fmtF(v float64) string {
	return itoa(int64(v*100)/100) + "." + itoa(int64(v*100)%100)
}

// AblationCombiner measures message reduction from Pregel combiners.
func AblationCombiner() *Table {
	t := &Table{ID: "abl-combiner", Title: "HashMin CC with and without a min-combiner",
		Header: []string{"graph", "combiner", "messages", "rounds"}}
	for _, n := range []int{1000, 4000} {
		g := gen.BarabasiAlbert(n, 6, int64(n))
		_, withRes := must3(pregel.HashMinCC(g, pregel.Config{Workers: 4}))
		prog := pregel.Program[int32, int32]{
			Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
			Compute: func(ctx *pregel.Context[int32], v graph.V, state *int32, msgs []int32) {
				min := *state
				if ctx.Superstep() == 0 {
					ctx.SendToNeighbors(v, min)
					ctx.VoteToHalt()
					return
				}
				for _, m := range msgs {
					if m < min {
						min = m
					}
				}
				if min < *state {
					*state = min
					ctx.SendToNeighbors(v, min)
				}
				ctx.VoteToHalt()
			},
		}
		noRes := must2(pregel.Run(g, prog, pregel.Config{Workers: 4}))
		t.AddRow(itoa(int64(n)), "yes", withRes.Net.Messages, withRes.Supersteps)
		t.AddRow(itoa(int64(n)), "no", noRes.Net.Messages, noRes.Supersteps)
	}
	t.Note("sender-side combining collapses per-destination messages (Pregel+'s message reduction)")
	return t
}

// AblationOrdering compares the clique-search design choices: pivoting
// on/off, and degeneracy vs natural root ordering.
func AblationOrdering() *Table {
	t := &Table{ID: "abl-ordering", Title: "Clique-search design choices (BA(500,12))",
		Header: []string{"variant", "cliques", "search nodes (ticks)", "max task"}}
	g := gen.BarabasiAlbert(500, 12, 1)
	type variant struct {
		name string
		run  func() (tthinker.CliqueResult, tthinker.Stats)
	}
	cfg := tthinker.Config{Workers: 4}
	for _, v := range []variant{
		{"BK + pivot + degeneracy", func() (tthinker.CliqueResult, tthinker.Stats) {
			return tthinker.MaximalCliques(g, false, cfg)
		}},
		{"BK + pivot + natural id", func() (tthinker.CliqueResult, tthinker.Stats) {
			return tthinker.MaximalCliquesNaturalOrder(g, false, cfg)
		}},
		{"BK WITHOUT pivot", func() (tthinker.CliqueResult, tthinker.Stats) {
			return tthinker.MaximalCliquesNoPivot(g, false, cfg)
		}},
	} {
		res, stats := v.run()
		t.AddRow(v.name, res.Count, stats.Ticks, stats.MaxTaskTicks)
	}
	t.Note("pivoting is the decisive choice (it prunes non-maximal branches); ordering mainly bounds root candidate sets")
	return t
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
