package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"graphsys/internal/core"
	"graphsys/internal/embed"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
	"graphsys/internal/tensor"
)

func init() {
	register("claim-tri", "§1 claim: MapReduce-style triangle counting loses to a serial merge counter", ClaimTriangle)
	register("claim-tlav", "§1/§2 claim: TLAV iterative algorithms finish in O(log|V|)-scale rounds", ClaimTLAV)
	register("claim-struct", "§1 claim (Stolman et al.): structural features beat embeddings for community labeling", ClaimStructVsEmbed)
	register("claim-subgnn", "§1 claim: subgraph/structural signals exceed plain GNN expressiveness", ClaimSubgraphFeatures)
}

// ClaimTriangle reproduces the Chu & Cheng observation the paper opens with:
// the MapReduce/TLAV triangle counter materialises every wedge as a message
// that must cross the shuffle, while the serial ordered-merge counter touches
// only in-memory adjacency lists. Both sides are metered — shuffle bytes for
// MR, merge operations for the serial counter — and the table shows that the
// distributed counter's NETWORK TRAFFIC alone exceeds the serial counter's
// entire work budget, before any compute is spent; counts are
// cross-validated.
func ClaimTriangle() *Table {
	t := &Table{ID: "claim-tri", Title: "Triangle counting: wedge-materialising MR/TLAV vs serial merge (metered work)",
		Header: []string{"graph", "triangles", "MR messages", "MR shuffle bytes", "serial merge ops", "shuffle bytes / serial op"}}
	for _, n := range []int{300, 600, 1200} {
		g := gen.BarabasiAlbert(n, 10, int64(n))
		mrCount, mrRes := must3(pregel.TriangleCountMR(g, pregel.Config{Workers: 4}))
		serialCount := graph.TriangleCount(g)
		if mrCount != serialCount {
			//lint:allow panicpolicy cross-validation assertion against the serial oracle; graphbench recovers it into a non-zero exit
			panic("triangle counts disagree")
		}
		msgs := mrRes.Net.Messages + mrRes.Net.LocalMessages
		ops := serialMergeOps(g)
		t.AddRow(fmt.Sprintf("BA n=%d m=%d", n, g.NumEdges()), serialCount,
			msgs, mrRes.Net.Bytes, ops, fmt.Sprintf("%.1fx", float64(mrRes.Net.Bytes)/float64(ops)))
	}
	t.Note("serial merge ops = Σ over degree-oriented edges (u,v) of d⁺(u)+d⁺(v), the ordered-intersection work of the merge counter")
	t.Note("every wedge message crosses the shuffle; a byte on the wire costs orders of magnitude more than a merge step, so the ratio above is a floor on the real slowdown")
	t.Note("the paper: 1636-machine MapReduce took 5.33 min where a serial external-memory counter took 0.5 min — the shuffle cost above is why")
	return t
}

// serialMergeOps meters the degree-ordered merge counter: edges are oriented
// from the (degree, id)-smaller endpoint, and counting a triangle on edge
// (u,v) merges the two sorted out-adjacency lists.
func serialMergeOps(g *graph.Graph) int64 {
	n := g.NumVertices()
	less := func(u, v graph.V) bool {
		du, dv := g.Degree(u), g.Degree(v)
		return du < dv || (du == dv && u < v)
	}
	outdeg := make([]int64, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.V(v)) {
			if less(graph.V(v), w) {
				outdeg[v]++
			}
		}
	}
	var ops int64
	g.EdgesOnce(func(u, v graph.V) {
		if less(v, u) {
			u, v = v, u
		}
		ops += outdeg[u] + outdeg[v]
	})
	return ops
}

// ClaimTLAV verifies the complexity envelope the paper assigns to TLAV
// systems: HashMin connected components converges in rounds near the graph
// diameter (≈ O(log|V|) for random graphs), with per-round work O(|V|+|E|).
func ClaimTLAV() *Table {
	t := &Table{ID: "claim-tlav", Title: "HashMin CC rounds vs log2|V| (ER graphs, avg degree 8)",
		Header: []string{"|V|", "|E|", "rounds", "log2|V|", "msgs/round / (V+E)"}}
	for _, n := range []int{500, 2000, 8000} {
		g := gen.ErdosRenyi(n, int64(4*n), int64(n))
		_, res := must3(pregel.HashMinCC(g, pregel.Config{Workers: 4}))
		perRound := float64(res.Net.Messages+res.Net.LocalMessages) / float64(res.Supersteps)
		t.AddRow(n, g.NumEdges(), res.Supersteps, fmt.Sprintf("%.1f", math.Log2(float64(n))),
			fmt.Sprintf("%.2f", perRound/float64(int64(n)+g.NumEdges())))
	}
	t.Note("rounds grow like the diameter (log-scale), message work per round stays linear — the regime where TLAV shines")
	return t
}

// structuredCommunities builds a community-labeling task where communities
// differ in INTERNAL STRUCTURE (dense clustered vs lattice vs tree-like), as
// real communities do — the setting of Stolman et al.'s study.
func structuredCommunities(seed int64) (*graph.Graph, []int, []bool, []bool) {
	const per = 120
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(3*per, false)
	// community 0: dense clustered (ER p≈0.12)
	for u := 0; u < per; u++ {
		for v := u + 1; v < per; v++ {
			if rng.Float64() < 0.12 {
				b.AddEdge(graph.V(u), graph.V(v))
			}
		}
	}
	// community 1: ring lattice (high clustering, low degree)
	for v := 0; v < per; v++ {
		for j := 1; j <= 2; j++ {
			b.AddEdge(graph.V(per+v), graph.V(per+(v+j)%per))
		}
	}
	// community 2: random tree plus a few extra edges (low clustering)
	for v := 1; v < per; v++ {
		b.AddEdge(graph.V(2*per+v), graph.V(2*per+rng.Intn(v)))
	}
	// sparse inter-community noise
	for i := 0; i < per/2; i++ {
		b.AddEdge(graph.V(rng.Intn(per)), graph.V(per+rng.Intn(per)))
		b.AddEdge(graph.V(per+rng.Intn(per)), graph.V(2*per+rng.Intn(per)))
	}
	g := b.Build()
	labels := make([]int, 3*per)
	train := make([]bool, 3*per)
	test := make([]bool, 3*per)
	for v := 0; v < 3*per; v++ {
		labels[v] = v / per
		if rng.Float64() < 0.4 {
			train[v] = true
		} else {
			test[v] = true
		}
	}
	return g, labels, train, test
}

// ClaimStructVsEmbed compares classic structural features against DeepWalk
// embeddings for community labeling on structurally distinct communities.
func ClaimStructVsEmbed() *Table {
	t := &Table{ID: "claim-struct", Title: "Community labeling: structural features vs DeepWalk embeddings",
		Header: []string{"feature set", "dims", "test accuracy"}}
	g, labels, train, test := structuredCommunities(23)
	p := core.NewPipeline(g, 4)

	sf := p.StructuralFeatureMatrix()
	clfS := p.TrainNodeClassifier(sf, labels, train, 1)
	accS := clfS.Accuracy(sf, labels, test)
	t.AddRow("structural (deg, logdeg, cc, core, tri)", sf.Cols, accS)

	emb := embed.DeepWalk(g, 6, 20, embed.SkipGramConfig{Dim: 16, Epochs: 3, Seed: 2})
	clfE := p.TrainNodeClassifier(emb, labels, train, 1)
	accE := clfE.Accuracy(emb, labels, test)
	t.AddRow("DeepWalk embeddings", emb.Cols, accE)

	both := tensor.ConcatCols(sf, emb)
	clfB := p.TrainNodeClassifier(both, labels, train, 1)
	t.AddRow("both concatenated", both.Cols, clfB.Accuracy(both, labels, test))
	t.Note("communities here differ in internal structure; classic features dominate, matching Stolman et al.")
	return t
}

// ClaimSubgraphFeatures demonstrates the expressiveness argument for
// subgraph-aware models: the label is a local-substructure property
// (triangle membership), invisible to a plain message-passing GCN over
// uninformative features but trivial once subgraph (triangle) counts are
// added as features.
func ClaimSubgraphFeatures() *Table {
	t := &Table{ID: "claim-subgnn", Title: "Predicting triangle membership: plain GCN vs +subgraph features",
		Header: []string{"model", "test accuracy"}}
	// graph: triangle-rich region + triangle-free bipartite-ish region with
	// comparable degrees
	rng := rand.New(rand.NewSource(31))
	const n = 300
	b := graph.NewBuilder(n, false)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n/2), rng.Intn(n/2)
		if u != v {
			b.AddEdge(graph.V(u), graph.V(v)) // first half: random (has triangles)
		}
	}
	for i := 0; i < 3*n; i++ { // second half: bipartite (no triangles)
		u := n/2 + rng.Intn(n/4)
		v := n/2 + n/4 + rng.Intn(n/4)
		b.AddEdge(graph.V(u), graph.V(v))
	}
	g := b.Build()
	tri := graph.LocalTriangles(g)
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		if tri[v] > 0 {
			labels[v] = 1
		}
	}
	train := make([]bool, n)
	test := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.4 {
			train[v] = true
		} else {
			test[v] = true
		}
	}
	// uninformative base features (constant + noise)
	base := tensor.New(n, 4)
	for i := range base.Data {
		base.Data[i] = rng.Float32()
	}
	task := &gnn.Task{G: g, X: base, Labels: labels, TrainMask: train, TestMask: test, NumClasses: 2}
	p := core.NewPipeline(g, 4)
	accPlain := p.TrainGNN(task, gnn.GCN, 16, 60, 3)
	t.AddRow("plain GCN (noise features)", accPlain)

	// augment with structural/subgraph features (triangle count, clustering)
	aug := tensor.New(n, 6)
	sf := graph.ComputeStructuralFeatures(g)
	for v := 0; v < n; v++ {
		copy(aug.Row(v)[:4], base.Row(v))
		aug.Set(v, 4, float32(math.Log1p(sf.Triangles[v])))
		aug.Set(v, 5, float32(sf.Clustering[v]))
	}
	task2 := &gnn.Task{G: g, X: aug, Labels: labels, TrainMask: train, TestMask: test, NumClasses: 2}
	accAug := p.TrainGNN(task2, gnn.GCN, 16, 60, 3)
	t.AddRow("GCN + subgraph (triangle) features", accAug)
	t.Note("triangle membership is beyond 1-WL message passing; explicit subgraph features close the gap (Subgraph GNNs' motivation)")
	return t
}
