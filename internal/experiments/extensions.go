package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"graphsys/internal/blogel"
	"graphsys/internal/cluster"
	"graphsys/internal/core"
	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/graphd"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
	"graphsys/internal/quegel"
)

// Extension experiments: systems the paper references beyond Tables 1–2
// (the presenters' TLAV line — Blogel block-centric computation, LWCP
// lightweight fault tolerance) and techniques adjacent to the surveyed ones
// (F²CGT feature compression, GNN whole-graph classification as the deep
// alternative on Figure 1's path 4).

func init() {
	register("ext-blogel", "Extension (§7 Blogel): block-centric vs vertex-centric connected components", ExtBlogel)
	register("ext-ftol", "Extension (§7 LWCP): lightweight checkpointing and failure recovery", ExtFaultTolerance)
	register("ext-gnnclass", "Extension: graph classification — FSM pattern features vs GIN/GCN", ExtGraphClassification)
	register("ext-featcomp", "Extension (F²CGT): feature compression on remote fetches", ExtFeatureCompression)
	register("ext-quegel", "Extension (§7 Quegel): superstep-sharing for batched point-to-point queries", ExtQuegel)
	register("ext-neuralcount", "Extension (§1): neural approximate subgraph counting (GIN regressor)", ExtNeuralCount)
	register("ext-graphd", "Extension (§7 GraphD): semi-external processing beyond the memory limit", ExtGraphD)
}

// ExtQuegel reproduces Quegel's superstep-sharing: serving q point-to-point
// shortest-path queries in one batched vertex-centric run pays max(rounds)
// barriers instead of the sum the one-query-at-a-time baseline pays.
func ExtQuegel() *Table {
	t := &Table{ID: "ext-quegel", Title: "Point-to-point distance queries: batched (Quegel) vs sequential",
		Header: []string{"queries", "mode", "barrier rounds", "messages"}}
	g := gen.BarabasiAlbert(2000, 4, 9)
	rng := rand.New(rand.NewSource(4))
	for _, nq := range []int{4, 16, 64} {
		var queries []quegel.Query
		for i := 0; i < nq; i++ {
			queries = append(queries, quegel.Query{
				Src: graph.V(rng.Intn(2000)), Dst: graph.V(rng.Intn(2000)),
			})
		}
		cfg := pregel.Config{Workers: 4}
		_, bst := must3(quegel.AnswerBatched(g, queries, cfg))
		_, sst := must3(quegel.AnswerSequential(g, queries, cfg))
		t.AddRow(nq, "batched (Quegel)", bst.Supersteps, bst.Messages)
		t.AddRow(nq, "sequential", sst.Supersteps, sst.Messages)
	}
	t.Note("batched rounds stay ~constant (max eccentricity) while sequential rounds grow linearly with the query count")
	t.Note("per-(vertex, query id) combining keeps batched message counts at the sequential level — queries share barriers without multiplying traffic; the barrier count is what dominates latency on real clusters")
	return t
}

// ExtBlogel reproduces Blogel's headline result: for high-diameter graphs,
// block-centric connected components needs rounds/messages proportional to
// the BLOCK graph, not the vertex graph.
func ExtBlogel() *Table {
	t := &Table{ID: "ext-blogel", Title: "Connected components: vertex-centric vs block-centric (Blogel)",
		Header: []string{"graph", "mode", "rounds", "messages"}}
	builds := []struct {
		name string
		g    *graph.Graph
	}{
		{"path n=2000 (diameter 1999)", pathGraph(2000)},
		{"grid 50x40", gen.Grid(50, 40)},
		{"community n=2000", gen.PlantedPartitionSparse(2000, 8, 8, 0.5, 5).Graph},
	}
	for _, bld := range builds {
		g := bld.g
		_, vres := must3(pregel.HashMinCC(g, pregel.Config{Workers: 4, MaxSupersteps: 100000}))
		t.AddRow(bld.name, "vertex-centric (Pregel)", vres.Supersteps,
			vres.Net.Messages+vres.Net.LocalMessages)
		blocks := blogel.Build(g, partition.Metis(g, 16))
		bres := must2(blocks.ConnectedComponents(4))
		t.AddRow(bld.name, "block-centric (Blogel)", bres.Supersteps, bres.Messages)
	}
	t.Note("rounds collapse from O(diameter) to O(block-graph diameter); messages shrink with the quotient size")
	return t
}

// ExtFaultTolerance shows LWCP's trade: checkpoint volume vs recomputation
// after an injected failure, as checkpoint frequency varies.
func ExtFaultTolerance() *Table {
	t := &Table{ID: "ext-ftol", Title: "Checkpoint frequency vs recovery cost (HashMin CC, failure at step 5)",
		Header: []string{"checkpoint every", "checkpoints", "ckpt bytes", "recomputed steps", "final correct"}}
	g := gen.ErdosRenyi(2000, 8000, 7)
	want, _ := graph.ConnectedComponents(g)
	match := func(states []int32) bool {
		for u := 0; u < 200; u++ {
			for v := u + 1; v < 200; v += 17 {
				if (want[u] == want[v]) != (states[u] == states[v]) {
					return false
				}
			}
		}
		return true
	}
	for _, every := range []int{0, 1, 2, 4} {
		res := must2(pregel.Run(g, hashMinProgram(), pregel.Config{
			Workers: 4, CheckpointEvery: every,
			RunOptions: cluster.RunOptions{Faults: &cluster.FaultPlan{CrashAtRound: 5}},
		}))
		name := "never (restart)"
		if every > 0 {
			name = itoa(int64(every))
		}
		t.AddRow(name, res.Checkpoints, res.CheckpointBytes, res.RecoveredSteps, match(res.States))
	}
	t.Note("frequent checkpoints cost bytes but bound recomputation; no checkpoint means full restart — LWCP's trade-off")
	return t
}

func hashMinProgram() pregel.Program[int32, int32] {
	return pregel.Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *pregel.Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
}

// ExtGraphClassification pits Figure-1 path 4's two realisations against
// each other on the molecule workload: frequent-pattern features + logistic
// regression (the conventional pipeline the paper cites) vs end-to-end GNN
// graph classification (GIN, GCN).
func ExtGraphClassification() *Table {
	t := &Table{ID: "ext-gnnclass", Title: "Molecule classification: pattern features vs GNN (100 molecules)",
		Header: []string{"method", "test accuracy"}}
	db := gen.MoleculeDB(100, 9, 4, 0.95, 123)
	rng := rand.New(rand.NewSource(1))
	trainMask := make([]bool, db.Len())
	testMask := make([]bool, db.Len())
	for i := range trainMask {
		if rng.Float64() < 0.6 {
			trainMask[i] = true
		} else {
			testMask[i] = true
		}
	}
	accFSM := core.GraphClassification(db, trainMask, 20, 4, 8, 7)
	t.AddRow("FSM patterns + LogReg", accFSM)
	for _, kind := range []gnn.ModelKind{gnn.GIN, gnn.GCN} {
		gc := gnn.TrainGraphClassifier(db, trainMask, gnn.GraphClassConfig{
			Kind: kind, Hidden: 16, Epochs: 25, LR: 0.01, Seed: 3})
		t.AddRow(fmt.Sprintf("%v + mean-pool readout", kind), gc.Accuracy(db, testMask))
	}
	t.Note("both realisations of Figure 1 path 4 learn the planted functional group; GIN's sum aggregation is the expressive GNN choice")
	return t
}

// ExtFeatureCompression measures F²CGT-style feature-fetch compression.
func ExtFeatureCompression() *Table {
	t := &Table{ID: "ext-featcomp", Title: "Feature compression on remote fetches (F²CGT), sync training",
		Header: []string{"feature bits", "net bytes", "vs fp32", "test acc"}}
	task := gnn.SyntheticCommunityTask(300, 3, 2, 0.3, 17)
	var base int64
	for _, bits := range []int{32, 8, 4, 2} {
		res := must2(gnndist.TrainSync(task, gnndist.TrainerConfig{
			Workers: 4, TimeBudget: 20, Seed: 21, FeatureBits: bits,
		}))
		if bits == 32 {
			base = res.Net.Bytes
		}
		t.AddRow(bits, res.Net.Bytes,
			fmt.Sprintf("%.2fx less", float64(base)/float64(res.Net.Bytes)), res.TestAcc)
	}
	t.Note("feature rows dominate GNN traffic; quantising them on the wire shrinks bytes with negligible accuracy cost (F²CGT)")
	return t
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for v := 0; v < n-1; v++ {
		b.AddEdge(graph.V(v), graph.V(v+1))
	}
	return b.Build()
}

// ExtNeuralCount reproduces the §1 pointer to neural subgraph counting
// (Wang et al.'s NeurSC / Ying et al.'s NeuroMatch): a GIN regressor with a
// sum-pool readout learns to approximate triangle counts, trading the exact
// counter's cost for constant-time inference with bounded error.
func ExtNeuralCount() *Table {
	t := &Table{ID: "ext-neuralcount", Title: "Neural approximate triangle counting (GIN regressor)",
		Header: []string{"predictor", "test MSE (scaled counts)", "rel. to mean-baseline"}}
	rng := rand.New(rand.NewSource(5))
	var graphs []*graph.Graph
	var targets []float64
	for i := 0; i < 80; i++ {
		n := 12 + rng.Intn(10)
		m := int64(n + rng.Intn(3*n))
		g := gen.ErdosRenyi(n, m, int64(i))
		graphs = append(graphs, g)
		targets = append(targets, float64(graph.TriangleCount(g))/10)
	}
	trainMask := make([]bool, len(graphs))
	for i := range trainMask {
		trainMask[i] = i%3 != 0
	}
	r := gnn.TrainGraphRegressor(graphs, targets, trainMask, gnn.RegressConfig{Hidden: 16, Epochs: 60, Seed: 1})
	var mean float64
	nTrain := 0
	for i, m := range trainMask {
		if m {
			mean += targets[i]
			nTrain++
		}
	}
	mean /= float64(nTrain)
	var mseModel, mseBase float64
	nTest := 0
	for i, m := range trainMask {
		if m {
			continue
		}
		p := r.Predict(graphs[i])
		mseModel += (p - targets[i]) * (p - targets[i])
		mseBase += (mean - targets[i]) * (mean - targets[i])
		nTest++
	}
	mseModel /= float64(nTest)
	mseBase /= float64(nTest)
	t.AddRow("GIN regressor (sum-pool)", fmt.Sprintf("%.4f", mseModel),
		fmt.Sprintf("%.2fx lower", mseBase/mseModel))
	t.AddRow("mean-of-train baseline", fmt.Sprintf("%.4f", mseBase), "1.00x")
	t.Note("the learned counter beats the trivial baseline on held-out graphs — the feasibility result behind neural subgraph counting; inference is a fixed-size forward pass per graph, independent of the exact counter's cost")
	return t
}

// ExtGraphD reproduces GraphD's semi-external trade: process a graph whose
// edge list lives on disk with only O(|V|) resident state, paying streamed
// I/O per pass instead of O(|V|+|E|) memory.
func ExtGraphD() *Table {
	t := &Table{ID: "ext-graphd", Title: "GraphD semi-external processing (edges on disk)",
		Header: []string{"graph", "edge bytes (disk)", "resident bytes", "passes", "bytes streamed", "components"}}
	dir := must2(os.MkdirTemp("", "graphd-exp"))
	defer os.RemoveAll(dir)
	for i, spec := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ER n=5000 deg 8", gen.ErdosRenyi(5000, 20000, 3)},
		{"BA n=5000 k=6", gen.BarabasiAlbert(5000, 6, 4)},
	} {
		ef := must2(graphd.WriteEdgeFile(spec.g, filepath.Join(dir, fmt.Sprintf("e%d.bin", i))))
		labels, st := must3(ef.ConnectedComponents(spec.g.NumVertices()))
		comps := map[int32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		t.AddRow(spec.name, ef.Bytes, st.ResidentBytes, st.Passes, st.BytesRead, len(comps))
	}
	t.Note("resident memory is O(|V|) — the edge list never loads; each pass streams the file once (GraphD's beyond-memory-limit design)")
	return t
}
