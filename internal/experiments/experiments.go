// Package experiments implements one runnable experiment per table, figure
// and quantitative claim of the paper, as indexed in DESIGN.md §3. Each
// experiment returns a formatted Table so that cmd/graphbench can print the
// paper-style artifact and EXPERIMENTS.md can record paper-vs-measured
// shapes; the root bench_test.go wraps the same workloads in testing.B
// benchmarks.
//
// Every table is DETERMINISTIC: two runs produce byte-identical output
// (TestExperimentsDeterministic enforces it). Columns therefore report
// metered work — ticks, messages, candidates, bytes, cost units — never wall
// time; the metered cost model is the clock, and graphlint's wallclock check
// covers this package. Quantitative claims about a table are declared as
// typed hypotheses (hypotheses.go) runnable via `graphbench -check`.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graphsys/internal/hypo"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
	// Claims builds the experiment-specific typed hypotheses (beyond the
	// generic two-run determinism invariant every experiment gets). Nil when
	// the table is purely descriptive. Lazy so that registration at init
	// never runs engine code.
	Claims func() []hypo.Hypothesis
}

var (
	registry []Experiment
	// claimsByID is filled by registerClaims (hypotheses.go) and joined to
	// the registry lazily in All/ByID: init functions run in file-name order,
	// so claims registration cannot assume the table registration already
	// happened (hypotheses.go sorts before table1.go).
	claimsByID = map[string]func() []hypo.Hypothesis{}
)

func register(id, title string, run func() *Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// registerClaims attaches typed hypotheses to an experiment by id.
func registerClaims(id string, claims func() []hypo.Hypothesis) {
	claimsByID[id] = claims
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	for i := range out {
		out[i].Claims = claimsByID[out[i].ID]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			e.Claims = claimsByID[e.ID]
			return e, true
		}
	}
	return Experiment{}, false
}

// must/must2/must3 unwrap engine results inside experiments: experiment
// configs are hard-coded and valid, so an error here is a programming bug
// worth a panic (cmd/graphbench recovers it into a stderr report and a
// non-zero exit instead of a half-printed table).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}

func must3[A, B any](a A, b B, err error) (A, B) {
	must(err)
	return a, b
}
