package experiments

import (
	"strings"
	"testing"

	"graphsys/internal/hypo"
)

// slow experiments are skipped under -short.
var slow = map[string]bool{
	"tab1-model": true, // BFS materialisation run takes seconds by design
	"tab1-order": true, // the naive matching order is deliberately slow
	"fig1":       true,
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slow[e.ID] {
				t.Skip("slow experiment skipped in -short mode")
			}
			table := e.Run()
			if table == nil {
				t.Fatal("nil table")
			}
			if table.ID != e.ID {
				t.Fatalf("table id %q != experiment id %q", table.ID, e.ID)
			}
			if len(table.Header) == 0 || len(table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, r := range table.Rows {
				if len(r) != len(table.Header) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(r), len(table.Header))
				}
			}
			var sb strings.Builder
			table.Fprint(&sb)
			out := sb.String()
			if !strings.Contains(out, e.ID) {
				t.Fatal("rendered output missing experiment id")
			}
		})
	}
}

// TestExperimentsDeterministic is the package's core contract (DESIGN.md
// §3.10): every experiment's rendered table is byte-identical across runs.
// A diff means wall-clock leakage, map-iteration ordering, or
// scheduling-dependent accounting crept into a column — always a bug, never
// noise. The same invariant ships as a Type-1 hypothesis
// (DeterminismHypothesis) so `graphbench -check` enforces it outside tests.
func TestExperimentsDeterministic(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slow[e.ID] {
				t.Skip("slow experiment skipped in -short mode")
			}
			o := DeterminismHypothesis(e).Check()
			if len(o) != 1 {
				t.Fatalf("expected 1 finding, got %d", len(o))
			}
			if !o[0].Pass {
				t.Fatalf("experiment %s is nondeterministic: %s", e.ID, o[0].Got)
			}
		})
	}
}

// TestExperimentClaims runs every registered experiment-specific hypothesis
// set; a red claim means a table's stated conclusion no longer holds.
func TestExperimentClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims re-run experiment workloads; skipped in -short mode")
	}
	for _, e := range All() {
		if e.Claims == nil {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := hypo.Run(e.ID, e.Claims())
			if !rep.Pass() {
				var sb strings.Builder
				rep.Fprint(&sb)
				t.Fatalf("claims failed:\n%s", sb.String())
			}
		})
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(All()) < 25 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
	if _, ok := ByID("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := ByID("no-such-experiment"); ok {
		t.Fatal("phantom experiment found")
	}
	// ids are unique
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", 2.5)
	tb.AddRow(int64(3), "four")
	tb.Note("hello %d", 7)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"a", "bb", "2.500", "four", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
