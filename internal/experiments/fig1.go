package experiments

import (
	"fmt"

	"graphsys/internal/core"
	"graphsys/internal/gnn"
	"graphsys/internal/graph/gen"
)

func init() {
	register("fig1", "Figure 1: the four analytics(+ML) pipeline paths, end to end", Fig1Pipeline)
}

// Fig1Pipeline runs one representative workload down each of the paper's
// four pipeline paths on the same community graph and reports the produced
// artifact — demonstrating that the library composes into the complete
// Figure-1 pipeline. (Per-path runtimes are host properties and live in the
// root benchmarks; this table is the deterministic composition evidence.)
func Fig1Pipeline() *Table {
	t := &Table{ID: "fig1", Title: "Pipeline paths on a 400-vertex community graph",
		Header: []string{"path", "stage(s)", "output"}}
	task := gnn.SyntheticCommunityTask(400, 4, 2, 0.3, 42)
	p := core.NewPipeline(task.G, 4)

	// Path 1: vertex analytics → per-vertex score
	ranks := p.PageRank(20)
	best := 0
	for v := range ranks {
		if ranks[v] > ranks[best] {
			best = v
		}
	}
	t.AddRow("1 vertex analytics", "PageRank(20)", fmt.Sprintf("%d scores, top=v%d", len(ranks), best))

	// Path 2: vertex analytics + ML → embeddings → node classifier
	emb := p.DeepWalkEmbeddings(16, 7)
	clf := p.TrainNodeClassifier(emb, task.Labels, task.TrainMask, 1)
	acc2 := clf.Accuracy(emb, task.Labels, task.TestMask)
	t.AddRow("2 vertex analytics+ML", "DeepWalk→LogReg", fmt.Sprintf("node acc %.3f", acc2))

	accGNN := p.TrainGNN(task, gnn.GCN, 16, 40, 3)
	t.AddRow("2 vertex analytics+ML", "GCN full-graph", fmt.Sprintf("node acc %.3f", accGNN))

	// Path 3: structure analytics → subgraph structures
	res := p.MaximalCliques(false)
	truss := len(p.KTrussCommunity(4))
	t.AddRow("3 structure analytics", "maximal cliques + 4-truss",
		fmt.Sprintf("%d cliques, %d truss vertices", res.Count, truss))

	motifKinds := len(p.MotifCounts(4))
	t.AddRow("3 structure analytics", "size-4 motif census", fmt.Sprintf("%d motif classes", motifKinds))

	// Path 4: structure analytics + ML → pattern features → graph classifier
	db := gen.MoleculeDB(60, 8, 3, 0.95, 11)
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = i%3 != 0
	}
	acc4 := core.GraphClassification(db, trainMask, 8, 3, 4, 2)
	t.AddRow("4 structure analytics+ML", "FSM→pattern features→LogReg",
		fmt.Sprintf("graph acc %.3f", acc4))

	t.Note("all four paths of the paper's Figure 1 run against the same library")
	return t
}
