package experiments

import (
	"math"
	"os"
	"path/filepath"

	"graphsys/internal/blogel"
	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/graph/gen"
	"graphsys/internal/graphd"
	"graphsys/internal/hypo"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
	"graphsys/internal/storage"
)

func init() {
	register("cap-storage", "Capacity (§7/ROADMAP 2): every engine on the out-of-core block store, budgeted cache vs in-memory", CapStorage)
	registerClaims("cap-storage", func() []hypo.Hypothesis {
		return []hypo.Hypothesis{tableClaim("cap-storage/oracle-equivalence",
			"every engine's disk-backed result is bitwise-identical to the in-memory oracle, and MRU never re-reads more than LRU on the cyclic sweep", CapStorage,
			func(c *checker) {
				for r := range c.t.Rows {
					c.expect(c.t.Rows[r][0]+" identical", c.t.Rows[r][5] == "true", "%s", c.t.Rows[r][5])
				}
				// rows 0-3: pagerank (lru, mru) × (0.10, 0.50)
				c.expect("mru ≤ lru bytes at budget 0.10", c.num(1, 4) <= c.num(0, 4),
					"mru %.0f vs lru %.0f", c.num(1, 4), c.num(0, 4))
				c.expect("mru ≤ lru bytes at budget 0.50", c.num(3, 4) <= c.num(2, 4),
					"mru %.0f vs lru %.0f", c.num(3, 4), c.num(2, 4))
				c.expect("mru bytes shrink with budget", c.num(3, 4) <= c.num(1, 4),
					"0.50: %.0f vs 0.10: %.0f", c.num(3, 4), c.num(1, 4))
			})}
	})
}

// CapStorage runs the four engines against the shared block-CSR layer
// (internal/storage) under bounded cache budgets and cross-checks each
// result against the in-memory oracle. All columns are metered I/O — hit
// ratios and bytes read are deterministic functions of the access sequence,
// never wall time — so the table is byte-identical run to run.
func CapStorage() *Table {
	t := &Table{ID: "cap-storage", Title: "Out-of-core block storage: bounded cache vs in-memory oracle",
		Header: []string{"engine/workload", "evict", "budget", "hit ratio", "bytes read", "identical"}}
	dir := must2(os.MkdirTemp("", "cap-storage"))
	defer os.RemoveAll(dir)

	g := gen.RMAT(13, 8, 21)
	path := filepath.Join(dir, "rmat.gsb")
	info := must2(storage.Write(path, g, storage.Options{BlockBytes: 1 << 12}))
	budget := func(frac float64) int64 {
		return info.ResidentBytes + int64(frac*float64(info.RawCSRBytes))
	}

	// pregel PageRank: a cyclic full sweep per superstep, both eviction
	// policies at a small and a medium cache
	const prIters = 6
	memRanks := must3a(pregel.PageRank(g, prIters, pregel.Config{Workers: 2}))
	for _, frac := range []float64{0.10, 0.50} {
		for _, pol := range []storage.EvictPolicy{storage.LRU, storage.MRU} {
			prov := must2(storage.OpenCached(path, budget(frac), 2, pol))
			ranks := must3a(pregel.PageRank(nil, prIters, pregel.Config{Workers: 2, Source: prov}))
			ident := len(ranks) == len(memRanks)
			for v := range ranks {
				if math.Float64bits(ranks[v]) != math.Float64bits(memRanks[v]) {
					ident = false
					break
				}
			}
			st := prov.Stats()
			must2(0, prov.Close())
			t.AddRow("pregel/pagerank", pol.String(), frac, st.HitRatio(), st.BytesRead, ident)
		}
	}

	// blogel: block construction AND connected components from the source
	part := partition.Hash(g, 4)
	memBlocks := blogel.Build(g, part)
	memCC := must2(memBlocks.ConnectedComponents(4))
	{
		prov := must2(storage.OpenCached(path, budget(0.50), 1, storage.LRU))
		blocks := must2(blogel.BuildSource(prov.Handle(0), part))
		cc := must2(blocks.ConnectedComponents(4))
		ident := cc.Supersteps == memCC.Supersteps && cc.Messages == memCC.Messages &&
			len(cc.Labels) == len(memCC.Labels)
		for v := range cc.Labels {
			if cc.Labels[v] != memCC.Labels[v] {
				ident = false
				break
			}
		}
		st := prov.Stats()
		must2(0, prov.Close())
		t.AddRow("blogel/cc", "lru", 0.50, st.HitRatio(), st.BytesRead, ident)
	}

	// gnndist: sampled synchronous training through the source
	task := gnn.SyntheticCommunityTask(600, 4, 8, 0.5, 7)
	tcfg := gnndist.TrainerConfig{Workers: 2, TimeBudget: 10, BatchSize: 16, Fanouts: []int{5, 5}, Seed: 3}
	memTrain := must2(gnndist.TrainSync(task, tcfg))
	{
		tinfo := must2(storage.Write(filepath.Join(dir, "task.gsb"), task.G, storage.Options{BlockBytes: 1 << 10}))
		prov := must2(storage.OpenCached(tinfo.Path, tinfo.ResidentBytes+tinfo.RawCSRBytes/2, 2, storage.LRU))
		cfg := tcfg
		cfg.Source = prov
		res := must2(gnndist.TrainSync(task, cfg))
		ident := math.Float64bits(res.TestAcc) == math.Float64bits(memTrain.TestAcc) &&
			res.Steps == memTrain.Steps && res.GradBytes == memTrain.GradBytes
		st := prov.Stats()
		must2(0, prov.Close())
		t.AddRow("gnndist/sync", "lru", 0.50, st.HitRatio(), st.BytesRead, ident)
	}

	// graphd: the semi-external engine rebuilt on the block layer, against
	// its own raw-edge-file baseline (per-pass sequential scans, no cache)
	{
		ef := must2(graphd.WriteEdgeFile(g, filepath.Join(dir, "edges.bin")))
		memLabels, memSt := must3(ef.ConnectedComponents(g.NumVertices()))
		bf := must2(graphd.OpenBlocks(path))
		labels, st := must3(bf.ConnectedComponents())
		ident := memSt.Passes == st.Passes && len(labels) == len(memLabels)
		for v := range labels {
			if labels[v] != memLabels[v] {
				ident = false
				break
			}
		}
		must2(0, bf.Close())
		t.AddRow("graphd/cc", "scan", "-", "-", st.BytesRead, ident)
	}

	t.Note("block file: %d B for a %d B raw CSR (%.2fx compression); resident state is O(|V|) degrees+index = %d B",
		info.FileBytes, info.RawCSRBytes, info.CompressionRatio(), info.ResidentBytes)
	t.Note("identical = bitwise-equal results vs the in-memory oracle (ranks, labels, training trajectory)")
	t.Note("on the cyclic PageRank sweep MRU pins a stable prefix of the working set, so it re-reads fewer bytes than LRU at the same budget (sequential flooding)")
	return t
}

// must3a unwraps the (value, result, error) triple of engine entry points
// where only the first value is needed.
func must3a[A, B any](a A, _ B, err error) A {
	if err != nil {
		panic(err)
	}
	return a
}
