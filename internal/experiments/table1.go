package experiments

import (
	"fmt"
	"sort"
	"strings"

	"graphsys/internal/fsm"
	"graphsys/internal/gpusim"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/gthinkerq"
	"graphsys/internal/match"
	"graphsys/internal/mining"
	"graphsys/internal/tthinker"
)

func init() {
	register("tab1-features", "Table 1: feature matrix of the implemented subgraph-search engines", Table1Features)
	register("tab1-model", "Table 1: BFS-extension materialisation vs DFS backtracking", Table1BFSvsDFS)
	register("tab1-order", "Table 1: compilation-based matching order + symmetry breaking", Table1MatchingOrder)
	register("tab1-fsm", "Table 1: FSM — task-parallel single-graph (T-FSM) and transactional (PrefixFPM)", Table1FSM)
	register("tab1-online", "Table 1: online interactive querying (G-thinkerQ) vs sequential", Table1OnlineQuery)
	register("tab1-gpu", "Table 1: GPU matching — BFS vs AIMD vs warp-DFS vs hybrid vs partitioned", Table1GPU)
}

// Table1Features recreates the paper's Table 1 as a checkmark matrix over
// the engines implemented in this repository (rows) and the feature columns
// the paper compares systems on.
func Table1Features() *Table {
	t := &Table{ID: "tab1-features", Title: "Subgraph-search engine features (this library)",
		Header: []string{"engine (paper exemplar)", "SF", "FSM", "DFS", "BFS", "online", "GPU-model", "order-compile", "work-steal"}}
	t.AddRow("pregel (TLAV baseline)", "-", "-", "-", "-", "-", "-", "-", "-")
	t.AddRow("mining (Arabesque/Pangolin)", "yes", "yes", "-", "yes", "-", "-", "-", "-")
	t.AddRow("tthinker (G-thinker/G-Miner)", "yes", "-", "yes", "-", "-", "-", "-", "yes")
	t.AddRow("gthinkerq (G-thinkerQ)", "yes", "-", "yes", "-", "yes", "-", "-", "-")
	t.AddRow("match (AutoMine/GraphPi/GraphZero)", "yes", "-", "yes", "-", "-", "-", "yes", "-")
	t.AddRow("fsm single-graph (ScaleMine/T-FSM)", "-", "yes", "yes", "-", "-", "-", "-", "-")
	t.AddRow("fsm transactional (PrefixFPM)", "-", "yes", "yes", "-", "-", "-", "-", "-")
	t.AddRow("gpusim BFS (GSI/cuTS)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim partitioned (PBE/VSGM/SGSI)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim AIMD (G²-AIMD)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim warp-DFS (STMatch/T-DFS)", "yes", "-", "yes", "-", "-", "yes", "-", "yes")
	t.AddRow("gpusim hybrid (EGSM)", "yes", "-", "yes", "yes", "-", "yes", "-", "yes")
	t.Note("SF = subgraph finding; FSM = frequent subgraph mining; columns follow the paper's Table 1 axes")
	return t
}

// Table1BFSvsDFS compares BFS subgraph extension (Arabesque-style, peak
// materialised embeddings grows with instance count) against DFS
// backtracking (G-thinker-style, constant memory) on k-clique counting as
// the graph densifies — the paper's core argument for the
// think-like-a-task model. All columns are metered: BFS peak is the largest
// embedding frontier ever materialised, the task-engine columns are its
// deterministic tick/task accounting (steal counts are scheduling noise and
// deliberately not reported).
func Table1BFSvsDFS() *Table {
	t := &Table{ID: "tab1-model", Title: "4-clique counting: BFS materialisation vs DFS backtracking",
		Header: []string{"graph", "cliques", "BFS peak embeddings", "task-engine ticks", "tasks", "max task ticks"}}
	for _, n := range []int{200, 400, 800} {
		g := gen.BarabasiAlbert(n, 8, int64(n))
		bfsCount, bfsStats := mining.CountCliquesBFS(g, 4, mining.Config{Workers: 4})
		dfsCount := mining.CountCliquesDFS(g, 4)
		if bfsCount != dfsCount {
			//lint:allow panicpolicy cross-validation assertion between two independent implementations; graphbench recovers it into a non-zero exit
			panic("bfs/dfs disagree")
		}
		// full task-engine maximal-clique mining as the richer DFS workload
		_, stats := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 4, Budget: 64})
		t.AddRow(fmt.Sprintf("BA n=%d m=%d", n, g.NumEdges()), bfsCount,
			bfsStats.Peak, stats.Ticks, stats.Tasks, stats.MaxTaskTicks)
	}
	t.Note("BFS peak embeddings grows with the instance count (the paper's materialisation-cost critique); DFS memory is O(k·Δ)")
	t.Note("task-engine work is metered in ticks (search-tree nodes); max task ticks bounds what work stealing can balance")
	return t
}

// Table1MatchingOrder shows the effect of compiled matching orders
// (AutoMine/GraphPi/GraphZero): candidate scans with a naive id order vs a
// connectivity/degree-aware greedy order, and the counting overhead removed
// by symmetry-breaking restrictions.
func Table1MatchingOrder() *Table {
	t := &Table{ID: "tab1-order", Title: "Matching plans on BA(600,6): candidates scanned / tree nodes",
		Header: []string{"pattern", "plan", "matches", "candidates", "tree nodes"}}
	g := gen.BarabasiAlbert(600, 6, 3)
	pats := []struct {
		name string
		p    *graph.Graph
	}{
		{"triangle", graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})},
		{"tailed-tri", graph.FromEdges(4, [][2]graph.V{{0, 2}, {1, 2}, {0, 1}, {2, 3}})},
		{"4-chord", graph.FromEdges(4, [][2]graph.V{{0, 2}, {1, 2}, {2, 3}, {0, 3}, {1, 3}})},
	}
	for _, pat := range pats {
		for _, plan := range []struct {
			name string
			p    *match.Plan
		}{
			{"naive-id", match.NaivePlan(pat.p)},
			{"greedy-order", match.GreedyPlan(pat.p)},
			{"+symmetry", match.OptimizedPlan(pat.p)},
		} {
			count, stats := match.Count(g, plan.p, 4)
			t.AddRow(pat.name, plan.name, count, stats.Candidates, stats.TreeNodes)
		}
	}
	t.Note("greedy order prunes candidate scans; symmetry breaking divides matches by |Aut| without recount")
	return t
}

// Table1FSM checks the property that makes task-parallel FSM valid at all
// (the T-FSM/ScaleMine and PrefixFPM axis): support evaluation decomposes
// into independent tasks, so the mined pattern set must be IDENTICAL at any
// worker count. The table reports the canonical pattern set and the
// cross-worker-count equality; throughput scaling is a host property and
// lives in the benchmarks, not here.
func Table1FSM() *Table {
	t := &Table{ID: "tab1-fsm", Title: "Frequent subgraph mining: worker-count invariance",
		Header: []string{"setting", "patterns", "total support", "1w==4w", "1w==8w"}}
	canon := func(pats []fsm.Pattern) (string, int) {
		keys := make([]string, len(pats))
		total := 0
		for i, p := range pats {
			keys[i] = fmt.Sprintf("%s@%d", p.Code.String(), p.Support)
			total += p.Support
		}
		sort.Strings(keys)
		return strings.Join(keys, "|"), total
	}
	// single big graph, MNI support
	g := gen.WithRandomLabels(gen.ErdosRenyi(300, 900, 5), 3, 6)
	cfgFor := func(w int) fsm.MineConfig {
		return fsm.MineConfig{MinSupport: 25, MaxEdges: 3, Workers: w}
	}
	k1, support := canon(fsm.MineSingleGraph(g, cfgFor(1)))
	k4, _ := canon(fsm.MineSingleGraph(g, cfgFor(4)))
	k8, _ := canon(fsm.MineSingleGraph(g, cfgFor(8)))
	t.AddRow("single-graph MNI (T-FSM)", strings.Count(k1, "|")+1, support, k1 == k4, k1 == k8)

	db := gen.MoleculeDB(120, 10, 4, 0.9, 9)
	tcfg := func(w int) fsm.MineConfig { return fsm.MineConfig{MinSupport: 30, MaxEdges: 4, Workers: w} }
	t1, tsupport := canon(fsm.MineTransactions(db, tcfg(1)))
	t4, _ := canon(fsm.MineTransactions(db, tcfg(4)))
	t8, _ := canon(fsm.MineTransactions(db, tcfg(8)))
	t.AddRow("transactional (PrefixFPM)", strings.Count(t1, "|")+1, tsupport, t1 == t4, t1 == t8)
	t.Note("support evaluation decomposes into independent tasks (T-FSM); root patterns parallelise prefix-projected databases (PrefixFPM)")
	t.Note("pattern sets are compared as sorted canonical DFS codes with supports — equality is what licenses the parallel decomposition")
	return t
}

// Table1OnlineQuery shows G-thinkerQ's value: completion time of short
// queries that arrive while a heavy query is running, under shared-pool
// concurrent admission vs strict sequential (offline) execution.
//
// Latencies are computed from METERED work, not the wall clock: each query's
// cost is its search-tree size (match.Stats.TreeNodes), the pool retires C
// work units per engine time unit, and the two admission policies become
// deterministic scheduling models — sequential runs jobs back to back, while
// G-thinkerQ's per-query round-robin is egalitarian processor sharing across
// the active queries. The live server is still exercised: its match counts
// must agree with the planner's, which pins the work metering to reality.
func Table1OnlineQuery() *Table {
	t := &Table{ID: "tab1-online", Title: "Online subgraph querying: light-query completion behind a heavy query (engine time units)",
		Header: []string{"admission", "heavy done", "mean light latency", "max light latency"}}
	// labeled data graph: light queries are SELECTIVE labeled triangles (the
	// realistic online workload), the heavy query is an unlabeled 5-clique
	// sweep over the whole graph
	g := gen.WithRandomLabels(gen.BarabasiAlbert(4000, 14, 4), 30, 8)
	heavy := gen.Clique(5)
	lb := graph.NewBuilder(3, false)
	lb.SetLabel(0, 1)
	lb.SetLabel(1, 2)
	lb.SetLabel(2, 3)
	lb.AddEdge(0, 1)
	lb.AddEdge(1, 2)
	lb.AddEdge(0, 2)
	light := lb.Build()

	const workers, lights = 4, 6
	heavyCount, heavyStats := match.Count(g, match.OptimizedPlan(heavy), workers)
	lightCount, lightStats := match.Count(g, match.OptimizedPlan(light), workers)
	wH := float64(heavyStats.TreeNodes)
	wL := float64(lightStats.TreeNodes)

	// cross-validate the model's work source against the live server: the
	// shared-pool engine must produce the same match counts the planner does
	s := gthinkerq.NewServer(g, workers)
	hq := s.Submit(heavy)
	lq := s.Submit(light)
	if hq.Wait() != heavyCount || lq.Wait() != lightCount {
		//lint:allow panicpolicy cross-validation assertion between the online server and the matching planner; graphbench recovers it into a non-zero exit
		panic("gthinkerq counts disagree with match.Count")
	}
	s.Close()

	// All light queries ARRIVE right after the heavy one; latency is engine
	// time from that shared arrival instant, at C = workers units of work
	// retired per time unit.
	//
	// Sequential (offline): the heavy job owns the whole pool, then each
	// light job runs alone, one at a time.
	seqHeavy := wH / workers
	var seqSum, seqMax float64
	for i := 1; i <= lights; i++ {
		l := (wH + float64(i)*wL) / workers
		seqSum += l
		if l > seqMax {
			seqMax = l
		}
	}
	// Concurrent (G-thinkerQ): per-query round-robin task draw = egalitarian
	// processor sharing over the 1+lights active queries. All light queries
	// carry equal work, so they finish together at rate C/(1+lights) each;
	// the heavy query then finishes on the full pool.
	active := float64(1 + lights)
	lightDone := wL * active / workers
	concHeavy := lightDone + (wH-wL)/workers

	t.AddRow("concurrent (G-thinkerQ)", fmtF(concHeavy), fmtF(lightDone), fmtF(lightDone))
	t.AddRow("sequential (offline)", fmtF(seqHeavy), fmtF(seqSum/lights), fmtF(seqMax))
	t.Note("work: heavy=%d tree nodes (%d matches), light=%d tree nodes (%d matches); pool C=%d units/time",
		heavyStats.TreeNodes, heavyCount, lightStats.TreeNodes, lightCount, workers)
	t.Note("with shared-pool task admission, short queries are not gated by the long-running one: light latency drops from O(W_heavy/C) to O(q·W_light/C)")
	return t
}

// Table1GPU runs the five GPU matching strategies on the simulated device
// under ample and scarce memory, reporting the metrics that drive the
// paper's GPU-systems narrative (OOM, host spill, divergence, coalescing).
func Table1GPU() *Table {
	t := &Table{ID: "tab1-gpu", Title: "Simulated-GPU subgraph matching (4-cycle on BA(400,8))",
		Header: []string{"memory", "engine", "matches", "warp cycles", "peak mem", "host spill", "random acc", "OOM"}}
	g := gen.BarabasiAlbert(400, 8, 6)
	pattern := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	plan := match.OptimizedPlan(pattern)
	for _, mem := range []struct {
		name  string
		slots int64
	}{{"ample (1G slots)", 1 << 30}, {"scarce (4k slots)", 4096}} {
		dev := &gpusim.Device{NumSMs: 8, WarpSize: 32, MemorySlots: mem.slots}
		type engine struct {
			name string
			run  func() (int64, gpusim.Metrics)
		}
		assign := make([]int, g.NumVertices())
		for v := range assign {
			assign[v] = v % 8
		}
		engines := []engine{
			{"BFS (GSI/cuTS)", func() (int64, gpusim.Metrics) { return gpusim.BFSMatch(g, plan, dev) }},
			{"partitioned BFS (PBE/VSGM)", func() (int64, gpusim.Metrics) { return gpusim.PartitionedBFSMatch(g, plan, dev, assign, 8) }},
			{"AIMD chunked (G²-AIMD)", func() (int64, gpusim.Metrics) { return gpusim.AIMDMatch(g, plan, dev) }},
			{"warp DFS (STMatch/T-DFS)", func() (int64, gpusim.Metrics) { return gpusim.DFSWarpMatch(g, plan, dev) }},
			{"hybrid (EGSM)", func() (int64, gpusim.Metrics) { return gpusim.HybridMatch(g, plan, dev) }},
		}
		for _, e := range engines {
			count, m := e.run()
			t.AddRow(mem.name, e.name, count, m.WarpCycles, m.PeakMemory, m.HostSpillSlots, m.RandomAccesses, m.OOM)
		}
	}
	t.Note("under scarce memory pure BFS aborts (OOM); AIMD spills to host, DFS/hybrid degrade gracefully — the paper's §2 GPU narrative")
	return t
}
