package experiments

import (
	"fmt"
	"time"

	"graphsys/internal/fsm"
	"graphsys/internal/gpusim"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/gthinkerq"
	"graphsys/internal/match"
	"graphsys/internal/mining"
	"graphsys/internal/tthinker"
)

func init() {
	register("tab1-features", "Table 1: feature matrix of the implemented subgraph-search engines", Table1Features)
	register("tab1-model", "Table 1: BFS-extension materialisation vs DFS backtracking", Table1BFSvsDFS)
	register("tab1-order", "Table 1: compilation-based matching order + symmetry breaking", Table1MatchingOrder)
	register("tab1-fsm", "Table 1: FSM — task-parallel single-graph (T-FSM) and transactional (PrefixFPM)", Table1FSM)
	register("tab1-online", "Table 1: online interactive querying (G-thinkerQ) vs sequential", Table1OnlineQuery)
	register("tab1-gpu", "Table 1: GPU matching — BFS vs AIMD vs warp-DFS vs hybrid vs partitioned", Table1GPU)
}

// Table1Features recreates the paper's Table 1 as a checkmark matrix over
// the engines implemented in this repository (rows) and the feature columns
// the paper compares systems on.
func Table1Features() *Table {
	t := &Table{ID: "tab1-features", Title: "Subgraph-search engine features (this library)",
		Header: []string{"engine (paper exemplar)", "SF", "FSM", "DFS", "BFS", "online", "GPU-model", "order-compile", "work-steal"}}
	t.AddRow("pregel (TLAV baseline)", "-", "-", "-", "-", "-", "-", "-", "-")
	t.AddRow("mining (Arabesque/Pangolin)", "yes", "yes", "-", "yes", "-", "-", "-", "-")
	t.AddRow("tthinker (G-thinker/G-Miner)", "yes", "-", "yes", "-", "-", "-", "-", "yes")
	t.AddRow("gthinkerq (G-thinkerQ)", "yes", "-", "yes", "-", "yes", "-", "-", "-")
	t.AddRow("match (AutoMine/GraphPi/GraphZero)", "yes", "-", "yes", "-", "-", "-", "yes", "-")
	t.AddRow("fsm single-graph (ScaleMine/T-FSM)", "-", "yes", "yes", "-", "-", "-", "-", "-")
	t.AddRow("fsm transactional (PrefixFPM)", "-", "yes", "yes", "-", "-", "-", "-", "-")
	t.AddRow("gpusim BFS (GSI/cuTS)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim partitioned (PBE/VSGM/SGSI)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim AIMD (G²-AIMD)", "yes", "-", "-", "yes", "-", "yes", "-", "-")
	t.AddRow("gpusim warp-DFS (STMatch/T-DFS)", "yes", "-", "yes", "-", "-", "yes", "-", "yes")
	t.AddRow("gpusim hybrid (EGSM)", "yes", "-", "yes", "yes", "-", "yes", "-", "yes")
	t.Note("SF = subgraph finding; FSM = frequent subgraph mining; columns follow the paper's Table 1 axes")
	return t
}

// Table1BFSvsDFS compares BFS subgraph extension (Arabesque-style, peak
// materialised embeddings grows with instance count) against DFS
// backtracking (G-thinker-style, constant memory) on k-clique counting as
// the graph densifies — the paper's core argument for the
// think-like-a-task model.
func Table1BFSvsDFS() *Table {
	t := &Table{ID: "tab1-model", Title: "4-clique counting: BFS materialisation vs DFS backtracking",
		Header: []string{"graph", "cliques", "BFS peak embeddings", "BFS time", "DFS time", "task-engine time", "steals"}}
	for _, n := range []int{200, 400, 800} {
		g := gen.BarabasiAlbert(n, 8, int64(n))
		var bfsCount int64
		var bfsStats mining.Stats
		bfsTime := timeIt(func() { bfsCount, bfsStats = mining.CountCliquesBFS(g, 4, mining.Config{Workers: 4}) })
		var dfsCount int64
		dfsTime := timeIt(func() { dfsCount = mining.CountCliquesDFS(g, 4) })
		if bfsCount != dfsCount {
			//lint:allow panicpolicy cross-validation assertion between two independent implementations; graphbench recovers it into a non-zero exit
			panic("bfs/dfs disagree")
		}
		// full task-engine maximal-clique mining as the richer DFS workload
		var stats tthinker.Stats
		taskTime := timeIt(func() { _, stats = tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 4, Budget: 64}) })
		t.AddRow(fmt.Sprintf("BA n=%d m=%d", n, g.NumEdges()), bfsCount,
			bfsStats.Peak, bfsTime, dfsTime, taskTime, stats.Steals)
	}
	t.Note("BFS peak embeddings grows with the instance count (the paper's materialisation-cost critique); DFS memory is O(k·Δ)")
	return t
}

// Table1MatchingOrder shows the effect of compiled matching orders
// (AutoMine/GraphPi/GraphZero): candidate scans with a naive id order vs a
// connectivity/degree-aware greedy order, and the counting overhead removed
// by symmetry-breaking restrictions.
func Table1MatchingOrder() *Table {
	t := &Table{ID: "tab1-order", Title: "Matching plans on BA(600,6): candidates scanned / tree nodes / time",
		Header: []string{"pattern", "plan", "matches", "candidates", "tree nodes", "time"}}
	g := gen.BarabasiAlbert(600, 6, 3)
	pats := []struct {
		name string
		p    *graph.Graph
	}{
		{"triangle", graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})},
		{"tailed-tri", graph.FromEdges(4, [][2]graph.V{{0, 2}, {1, 2}, {0, 1}, {2, 3}})},
		{"4-chord", graph.FromEdges(4, [][2]graph.V{{0, 2}, {1, 2}, {2, 3}, {0, 3}, {1, 3}})},
	}
	for _, pat := range pats {
		for _, plan := range []struct {
			name string
			p    *match.Plan
		}{
			{"naive-id", match.NaivePlan(pat.p)},
			{"greedy-order", match.GreedyPlan(pat.p)},
			{"+symmetry", match.OptimizedPlan(pat.p)},
		} {
			var count int64
			var stats match.Stats
			d := timeIt(func() { count, stats = match.Count(g, plan.p, 4) })
			t.AddRow(pat.name, plan.name, count, stats.Candidates, stats.TreeNodes, d)
		}
	}
	t.Note("greedy order prunes candidate scans; symmetry breaking divides matches by |Aut| without recount")
	return t
}

// Table1FSM contrasts serial and task-parallel single-graph FSM (the
// T-FSM/ScaleMine axis) and transactional FSM (PrefixFPM) scaling.
func Table1FSM() *Table {
	t := &Table{ID: "tab1-fsm", Title: "Frequent subgraph mining",
		Header: []string{"setting", "patterns", "serial", "4 workers", "8 workers", "speedup(8w)"}}
	// single big graph, MNI support
	g := gen.WithRandomLabels(gen.ErdosRenyi(300, 900, 5), 3, 6)
	cfgFor := func(w int) fsm.MineConfig {
		return fsm.MineConfig{MinSupport: 25, MaxEdges: 3, Workers: w}
	}
	var pats []fsm.Pattern
	serial := timeIt(func() { pats = fsm.MineSingleGraph(g, cfgFor(1)) })
	par4 := timeIt(func() { fsm.MineSingleGraph(g, cfgFor(4)) })
	par8 := timeIt(func() { fsm.MineSingleGraph(g, cfgFor(8)) })
	t.AddRow("single-graph MNI (T-FSM)", len(pats), serial, par4, par8,
		fmt.Sprintf("%.2fx", float64(serial)/float64(par8)))

	db := gen.MoleculeDB(120, 10, 4, 0.9, 9)
	tcfg := func(w int) fsm.MineConfig { return fsm.MineConfig{MinSupport: 30, MaxEdges: 4, Workers: w} }
	var tpats []fsm.Pattern
	tserial := timeIt(func() { tpats = fsm.MineTransactions(db, tcfg(1)) })
	tpar4 := timeIt(func() { fsm.MineTransactions(db, tcfg(4)) })
	tpar8 := timeIt(func() { fsm.MineTransactions(db, tcfg(8)) })
	t.AddRow("transactional (PrefixFPM)", len(tpats), tserial, tpar4, tpar8,
		fmt.Sprintf("%.2fx", float64(tserial)/float64(tpar8)))
	t.Note("support evaluation decomposes into independent tasks (T-FSM); root patterns parallelise prefix-projected databases (PrefixFPM)")
	return t
}

// Table1OnlineQuery measures G-thinkerQ's value: latency of short queries
// submitted while a heavy query is running, under shared-pool concurrent
// admission vs strict sequential execution.
func Table1OnlineQuery() *Table {
	t := &Table{ID: "tab1-online", Title: "Online subgraph querying: light-query latency behind a heavy query",
		Header: []string{"admission", "heavy done", "mean light latency", "max light latency"}}
	// labeled data graph: light queries are SELECTIVE labeled triangles (the
	// realistic online workload), the heavy query is an unlabeled 5-clique
	// sweep over the whole graph
	g := gen.WithRandomLabels(gen.BarabasiAlbert(4000, 14, 4), 30, 8)
	heavy := gen.Clique(5)
	lb := graph.NewBuilder(3, false)
	lb.SetLabel(0, 1)
	lb.SetLabel(1, 2)
	lb.SetLabel(2, 3)
	lb.AddEdge(0, 1)
	lb.AddEdge(1, 2)
	lb.AddEdge(0, 2)
	light := lb.Build()

	// All six light queries ARRIVE right after the heavy one is submitted;
	// latency is measured from that shared arrival instant. An offline
	// (one-job-at-a-time) system makes them wait for the heavy query.
	run := func(sequential bool) (time.Duration, time.Duration, time.Duration) {
		s := gthinkerq.NewServer(g, 4)
		defer s.Close()
		hq := s.Submit(heavy)
		arrival := time.Now()
		var lat []time.Duration
		if sequential {
			hq.Wait() // offline: light queries queue behind the running job
			for i := 0; i < 6; i++ {
				lq := s.Submit(light)
				lq.Wait()
				lat = append(lat, time.Since(arrival))
			}
		} else {
			var qs []*gthinkerq.Query
			for i := 0; i < 6; i++ {
				qs = append(qs, s.Submit(light))
			}
			for _, lq := range qs {
				lq.Wait()
				lat = append(lat, lq.Latency())
			}
		}
		hq.Wait()
		var sum, max time.Duration
		for _, l := range lat {
			sum += l
			if l > max {
				max = l
			}
		}
		return hq.Latency(), sum / time.Duration(len(lat)), max
	}
	hd, mean, max := run(false)
	t.AddRow("concurrent (G-thinkerQ)", hd, mean, max)
	hd2, mean2, max2 := run(true)
	t.AddRow("sequential (offline)", hd2, mean2, max2)
	t.Note("with shared-pool task admission, short queries are not gated by the long-running one")
	return t
}

// Table1GPU runs the five GPU matching strategies on the simulated device
// under ample and scarce memory, reporting the metrics that drive the
// paper's GPU-systems narrative (OOM, host spill, divergence, coalescing).
func Table1GPU() *Table {
	t := &Table{ID: "tab1-gpu", Title: "Simulated-GPU subgraph matching (4-cycle on BA(400,8))",
		Header: []string{"memory", "engine", "matches", "warp cycles", "peak mem", "host spill", "random acc", "OOM"}}
	g := gen.BarabasiAlbert(400, 8, 6)
	pattern := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	plan := match.OptimizedPlan(pattern)
	for _, mem := range []struct {
		name  string
		slots int64
	}{{"ample (1G slots)", 1 << 30}, {"scarce (4k slots)", 4096}} {
		dev := &gpusim.Device{NumSMs: 8, WarpSize: 32, MemorySlots: mem.slots}
		type engine struct {
			name string
			run  func() (int64, gpusim.Metrics)
		}
		assign := make([]int, g.NumVertices())
		for v := range assign {
			assign[v] = v % 8
		}
		engines := []engine{
			{"BFS (GSI/cuTS)", func() (int64, gpusim.Metrics) { return gpusim.BFSMatch(g, plan, dev) }},
			{"partitioned BFS (PBE/VSGM)", func() (int64, gpusim.Metrics) { return gpusim.PartitionedBFSMatch(g, plan, dev, assign, 8) }},
			{"AIMD chunked (G²-AIMD)", func() (int64, gpusim.Metrics) { return gpusim.AIMDMatch(g, plan, dev) }},
			{"warp DFS (STMatch/T-DFS)", func() (int64, gpusim.Metrics) { return gpusim.DFSWarpMatch(g, plan, dev) }},
			{"hybrid (EGSM)", func() (int64, gpusim.Metrics) { return gpusim.HybridMatch(g, plan, dev) }},
		}
		for _, e := range engines {
			count, m := e.run()
			t.AddRow(mem.name, e.name, count, m.WarpCycles, m.PeakMemory, m.HostSpillSlots, m.RandomAccesses, m.OOM)
		}
	}
	t.Note("under scarce memory pure BFS aborts (OOM); AIMD spills to host, DFS/hybrid degrade gracefully — the paper's §2 GPU narrative")
	return t
}
