package experiments

import (
	"fmt"
	"math/rand"

	"graphsys/internal/cluster"
	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/graph"
	"graphsys/internal/partition"
	"graphsys/internal/tensor"
)

func init() {
	register("tab2-features", "Table 2: technique matrix of the implemented distributed GNN trainers", Table2Features)
	register("tab2-part", "Table 2: graph partitioning → feature-fetch traffic", Table2Partitioning)
	register("tab2-sampling", "Table 2: neighborhood sampling fanout → traffic and accuracy", Table2Sampling)
	register("tab2-cache", "Table 2: hot-vertex feature caching (BGL)", Table2Caching)
	register("tab2-pipeline", "Table 2: operator pipelining (ByteGNN/BGL/Dorylus)", Table2Pipelining)
	register("tab2-async", "Table 2: sync vs bounded staleness vs Sancus", Table2Staleness)
	register("tab2-quant", "Table 2: quantised gradient compression (EC-Graph/EXACT)", Table2Quantization)
	register("tab2-pushpull", "Table 2: P³ push-pull vs data-parallel pull", Table2PushPull)
	register("tab2-fullgraph", "Table 2: full-graph training — DistGNN delayed updates, HongTu offload", Table2FullGraph)
	register("tab2-commplan", "Table 2: DGCL topology-aware communication planning", Table2CommPlan)
	register("tab2-serverless", "Table 2: Dorylus serverless cost model", Table2Serverless)
}

// task used across Table-2 experiments.
func table2Task() *gnn.Task { return gnn.SyntheticCommunityTask(300, 3, 2, 0.3, 17) }

// Table2Features recreates the paper's Table 2 as a checkmark matrix over
// the mechanisms implemented in internal/gnndist.
func Table2Features() *Table {
	t := &Table{ID: "tab2-features", Title: "Distributed GNN training techniques (this library)",
		Header: []string{"trainer / mechanism (paper exemplar)", "partitioning", "sampling", "pipelining", "async", "compression", "caching", "comm-plan", "offload"}}
	t.AddRow("TrainSync (DistDGL-style)", "yes", "yes", "-", "-", "opt", "opt", "-", "-")
	t.AddRow("TrainBoundedStale (Dorylus/P³)", "yes", "yes", "-", "yes", "opt", "opt", "-", "-")
	t.AddRow("TrainSancus (Sancus)", "yes", "yes", "-", "adaptive", "opt", "opt", "-", "-")
	t.AddRow("TrainDistGNN (DistGNN)", "vertex-cut", "-", "-", "delayed", "-", "-", "-", "-")
	t.AddRow("OffloadedGCNForward (HongTu)", "chunked", "-", "-", "-", "-", "-", "-", "yes")
	t.AddRow("PushPullLayer1 (P³)", "feature-dim", "yes", "-", "-", "-", "-", "-", "-")
	t.AddRow("Pipeline scheduler (ByteGNN/BGL)", "-", "-", "yes", "-", "-", "-", "-", "-")
	t.AddRow("CommPlan (DGCL)", "-", "-", "-", "-", "-", "-", "yes", "-")
	t.AddRow("LambdaPool (Dorylus)", "-", "-", "yes", "-", "-", "-", "-", "serverless")
	return t
}

// Table2Partitioning compares feature-fetch traffic of distributed sampled
// training under the partitioning strategies the paper discusses.
func Table2Partitioning() *Table {
	t := &Table{ID: "tab2-part", Title: "Partitioning → remote feature fetches (4 workers, sampled GCN, sparse seeds)",
		Header: []string{"partitioner", "edge cut", "imbalance", "remote fetch frac", "net bytes", "test acc"}}
	// sparse labeling (5% train seeds on a 1200-vertex graph): the regime
	// ByteGNN/BGL target, where the workload is the seeds' few-hop balls and
	// a global min edge-cut is not the right objective
	task := gnn.SyntheticCommunityTask(1200, 4, 2, 0.05, 19)
	seeds := task.TrainSeeds()
	parts := []struct {
		name string
		mk   func() *partition.Partition
	}{
		{"hash (baseline)", func() *partition.Partition { return partition.Hash(task.G, 4) }},
		{"LDG streaming", func() *partition.Partition { return partition.LDG(task.G, 4) }},
		{"METIS-like (DistDGL/DGCL)", func() *partition.Partition { return partition.Metis(task.G, 4) }},
		{"BFS-Voronoi (ByteGNN/BGL)", func() *partition.Partition { return partition.BFSVoronoi(task.G, seeds, 4) }},
	}
	for _, pp := range parts {
		part := pp.mk()
		res := must2(gnndist.TrainSync(task, gnndist.TrainerConfig{
			Workers: 4, TimeBudget: 15, Seed: 7, Part: part,
		}))
		t.AddRow(pp.name, part.EdgeCut(task.G), fmt.Sprintf("%.2f", part.Imbalance()),
			fmt.Sprintf("%.3f", res.RemoteFrac), res.Net.Bytes, res.TestAcc)
	}
	t.Note("METIS-like partitioning minimises traffic but is the most expensive to compute (multi-pass coarsening vs one streaming pass); BFS-Voronoi and LDG recover much of the locality at streaming cost (ByteGNN/BGL's trade)")
	return t
}

// Table2Sampling sweeps the neighbor-sampling fanout.
func Table2Sampling() *Table {
	t := &Table{ID: "tab2-sampling", Title: "Neighborhood sampling fanout (2-layer GCN, 4 workers)",
		Header: []string{"fanout", "net bytes", "remote frac", "test acc"}}
	task := table2Task()
	for _, fanout := range []int{2, 4, 8, 16, 32} {
		res := must2(gnndist.TrainSync(task, gnndist.TrainerConfig{
			Workers: 4, TimeBudget: 15, Seed: 8, Fanouts: []int{fanout, fanout},
		}))
		t.AddRow(fmt.Sprintf("%d,%d", fanout, fanout), res.Net.Bytes,
			fmt.Sprintf("%.3f", res.RemoteFrac), res.TestAcc)
	}
	t.Note("small fanouts bound graph-data communication (Euler/AliGraph/ByteGNN) at modest accuracy cost")
	return t
}

// Table2Caching toggles the BGL hot-vertex cache.
func Table2Caching() *Table {
	t := &Table{ID: "tab2-cache", Title: "Hot-vertex feature cache (BGL), 4 workers",
		Header: []string{"cache size", "remote fetches", "cache hits", "net bytes", "test acc"}}
	task := table2Task()
	for _, size := range []int{0, 16, 64, 256} {
		res := must2(gnndist.TrainSyncWithStats(task, gnndist.TrainerConfig{
			Workers: 4, TimeBudget: 15, Seed: 9, CacheSize: size,
		}))
		t.AddRow(size, res.Misses, res.Hits, res.Result.Net.Bytes, res.Result.TestAcc)
	}
	t.Note("caching the high-degree vertices absorbs most remote fetches on skewed graphs")
	return t
}

// Table2Pipelining compares sequential vs pipelined stage execution. Each
// stage's per-batch cost is METERED from the work the stage actually did —
// sample: vertices+edges touched; fetch: bytes moved, weighted for a
// network-bound link; compute: forward-pass flops, weighted for a fast ALU —
// so the makespans are deterministic cost-model quantities, not wall times.
// The stage bodies still execute for real (the fetch feeds the forward
// pass), which keeps the meters honest.
func Table2Pipelining() *Table {
	t := &Table{ID: "tab2-pipeline", Title: "Stage pipelining (sample → fetch → compute), cost units",
		Header: []string{"batches", "sequential", "pipelined", "speedup"}}
	task := table2Task()
	rng := rand.New(rand.NewSource(5))
	part := partition.Hash(task.G, 4)
	net := cluster.NewNetwork(4)
	fs := gnndist.NewFeatureStore(task.X, part, net)
	seeds := task.TrainSeeds()
	const (
		bytesPerUnit = 20.0  // network: 20 B per cost unit (the bottleneck-ish link)
		flopsPerUnit = 100.0 // compute: 100 flops per cost unit
	)
	for _, batches := range []int{4, 16, 64} {
		times := make(gnndist.StageTimes, 3)
		for s := range times {
			times[s] = make([]float64, batches)
		}
		for b := 0; b < batches; b++ {
			batch := []graph.V{seeds[rng.Intn(len(seeds))], seeds[rng.Intn(len(seeds))]}
			if batch[0] == batch[1] {
				batch = batch[:1]
			}
			sub := gnn.NeighborSample(task.G, batch, []int{8, 8}, rng)
			bx := fs.Fetch(0, sub.NewToOld)
			m := gnn.NewModel(sub.Graph, gnn.GCN, []int{task.X.Cols, 16, task.NumClasses}, 1)
			m.Forward(bx)
			n := float64(len(sub.NewToOld))
			e := float64(sub.Graph.NumEdges())
			times[0][b] = n + e                                          // sampling touches each sampled vertex and edge
			times[1][b] = n * float64(task.X.Cols) * 4 / bytesPerUnit    // feature rows over the wire
			times[2][b] = (n*float64(task.X.Cols)+e) * 16 / flopsPerUnit // two-layer forward, hidden=16
		}
		seq := gnndist.SequentialMakespan(times)
		pip := gnndist.PipelinedMakespan(times)
		t.AddRow(batches, fmtF(seq), fmtF(pip), fmt.Sprintf("%.2fx", seq/pip))
	}
	t.Note("pipelining hides all but the bottleneck stage (ByteGNN two-level scheduling / BGL factored executors); speedup approaches sum/bottleneck as batches grow")
	return t
}

// Table2Staleness is the time-to-accuracy comparison of synchronisation
// modes with a straggler.
func Table2Staleness() *Table {
	t := &Table{ID: "tab2-async", Title: "Sync vs bounded-staleness vs Sancus (one 5x straggler, fixed time budget)",
		Header: []string{"mode", "steps applied", "sync rounds", "skipped bcasts", "net bytes", "test acc"}}
	task := table2Task()
	speeds := []float64{1, 1, 1, 5}
	base := gnndist.TrainerConfig{Workers: 4, TimeBudget: 40, WorkerSpeed: speeds, Seed: 10}
	sync := must2(gnndist.TrainSync(task, base))
	t.AddRow("sync (DistDGL-style)", sync.Steps, sync.SyncRounds, 0, sync.Net.Bytes, sync.TestAcc)
	for _, s := range []int{2, 8} {
		cfg := base
		cfg.Staleness = s
		async := must2(gnndist.TrainBoundedStale(task, cfg))
		t.AddRow(fmt.Sprintf("bounded staleness s=%d (Dorylus/P³)", s),
			async.Steps, async.SyncRounds, 0, async.Net.Bytes, async.TestAcc)
	}
	cfg := base
	cfg.SancusTau = 5e-3
	cfg.TimeBudget = 200 // same number of rounds as sync (40 rounds at cost 5)
	sancus := must2(gnndist.TrainSancus(task, cfg))
	t.AddRow("Sancus adaptive (40 rounds)", sancus.Steps, sancus.SyncRounds, sancus.Skipped, sancus.Net.Bytes, sancus.TestAcc)
	syncLong := base
	syncLong.TimeBudget = 200
	sl := must2(gnndist.TrainSync(task, syncLong))
	t.AddRow("sync (40 rounds)", sl.Steps, sl.SyncRounds, 0, sl.Net.Bytes, sl.TestAcc)
	t.Note("asynchrony lands more gradient steps in the same simulated time when a straggler gates synchronous rounds")
	t.Note("Sancus skips broadcasts once updates shrink, cutting bytes at matched round count")
	return t
}

// Table2Quantization sweeps gradient-compression settings.
func Table2Quantization() *Table {
	t := &Table{ID: "tab2-quant", Title: "Gradient quantisation (sync training, fixed budget)",
		Header: []string{"bits", "error comp.", "grad bytes", "vs fp32", "test acc"}}
	task := gnn.HardSyntheticCommunityTask(300, 3, 0.3, 17)
	var fp32Bytes int64
	for _, cfg := range []struct {
		bits int
		ec   bool
	}{{32, false}, {8, false}, {8, true}, {4, false}, {4, true}, {2, false}, {2, true}} {
		res := must2(gnndist.TrainSync(task, gnndist.TrainerConfig{
			Workers: 4, TimeBudget: 30, Seed: 11, QuantBits: cfg.bits, QuantCompensate: cfg.ec,
		}))
		if cfg.bits == 32 {
			fp32Bytes = res.GradBytes
		}
		t.AddRow(cfg.bits, cfg.ec, res.GradBytes,
			fmt.Sprintf("%.2fx less", float64(fp32Bytes)/float64(res.GradBytes)), res.TestAcc)
	}
	t.Note("low-bit compression shrinks traffic up to the per-row-scale floor")
	t.Note("Adam absorbs quantisation noise on this task even at 2 bits; EC's bias removal is isolated in TestQuantizerErrorCompensation (running mean converges to the true value only with EC)")
	return t
}

// Table2PushPull compares P³'s push-pull layer-1 against feature pulling for
// several feature widths.
func Table2PushPull() *Table {
	t := &Table{ID: "tab2-pushpull", Title: "P³ push-pull vs data-parallel pull (layer-1, 4 workers, hidden=16)",
		Header: []string{"feature dim D", "pull bytes", "push-pull bytes", "winner"}}
	task := table2Task()
	const k, hidden = 4, 16
	batch := task.TrainSeeds()[:24]
	for _, d := range []int{8, 32, 128, 512} {
		x := tensor.Xavier(task.G.NumVertices(), d, int64(d))
		w1 := tensor.Xavier(d, hidden, 3)
		part := partition.Hash(task.G, k)
		fd := partition.NewFeatureDim(d, k)
		netPull := cluster.NewNetwork(k)
		zPull, pullBytes := gnndist.PullLayer1(netPull, part, x, w1, batch, 0)
		netPush := cluster.NewNetwork(k)
		zPush, pushBytes := gnndist.PushPullLayer1(netPush, fd, x, w1, batch, 0)
		if tensor.MaxAbsDiff(zPull, zPush) > 1e-2 {
			//lint:allow panicpolicy cross-validation assertion between pull and push-pull layer results; graphbench recovers it into a non-zero exit
			panic("push-pull result mismatch")
		}
		winner := "pull"
		if pushBytes < pullBytes {
			winner = "push-pull (P³)"
		}
		t.AddRow(d, pullBytes, pushBytes, winner)
	}
	t.Note("P³ wins once D exceeds ~k·H/(remote fraction): the hidden dimension, not the feature width, crosses the wire")
	return t
}

// Table2FullGraph reports DistGNN delayed updates and HongTu offloading.
func Table2FullGraph() *Table {
	t := &Table{ID: "tab2-fullgraph", Title: "Full-graph training: delayed updates (DistGNN) and offload (HongTu)",
		Header: []string{"setting", "metric", "value", "test acc"}}
	task := table2Task()
	for _, refresh := range []int{1, 2, 4, 8} {
		res := gnndist.TrainDistGNN(task, gnndist.DistGNNConfig{Workers: 4, Epochs: 40, RefreshEvery: refresh, Seed: 12})
		t.AddRow(fmt.Sprintf("DistGNN refresh=%d", refresh), "boundary bytes",
			res.Net.Bytes, res.TestAcc)
	}
	// HongTu offload accounting
	const hidden = 16
	l1w := tensor.Xavier(task.X.Cols, hidden, 1)
	l1b := tensor.New(1, hidden)
	l2w := tensor.Xavier(hidden, task.NumClasses, 2)
	l2b := tensor.New(1, task.NumClasses)
	for _, chunk := range []int{300, 64, 16} {
		_, st := gnndist.OffloadedGCNForward(task.G, task.X, l1w, l1b, l2w, l2b, chunk)
		t.AddRow(fmt.Sprintf("HongTu chunk=%d", chunk),
			fmt.Sprintf("device peak %d / full %d floats", st.DevicePeakFloats, st.FullGraphFloats),
			fmt.Sprintf("host xfer %d", st.HostTransferred), "n/a (identical forward)")
	}
	t.Note("delayed refresh divides boundary traffic with small accuracy cost; offloading bounds device memory at host-transfer cost")
	return t
}

// Table2CommPlan shows DGCL-style topology-aware planning on an NVLink-like
// topology.
func Table2CommPlan() *Table {
	t := &Table{ID: "tab2-commplan", Title: "DGCL communication planning (2 hosts x 4 GPUs, NVLink cost 0.05)",
		Header: []string{"plan", "weighted cost", "improvement"}}
	net := cluster.NewNetwork(8)
	cluster.RingTopology(net, 4, 0.05)
	// cross-host links are asymmetric: one congested pair
	net.SetLinkCost(0, 4, 5)
	net.SetLinkCost(4, 0, 5)
	rng := rand.New(rand.NewSource(13))
	var ts []cluster.Transfer
	for i := 0; i < 64; i++ {
		from := rng.Intn(8)
		to := rng.Intn(8)
		if from == to {
			continue
		}
		ts = append(ts, cluster.Transfer{From: from, To: to, Size: int64(1000 + rng.Intn(9000))})
	}
	direct := cluster.DirectPlan(ts).Execute(net, ts)
	net.Reset()
	cluster.RingTopology(net, 4, 0.05)
	net.SetLinkCost(0, 4, 5)
	net.SetLinkCost(4, 0, 5)
	planned := cluster.PlanRelay(net, ts).Execute(net, ts)
	t.AddRow("direct point-to-point", fmt.Sprintf("%.0f", direct), "1.00x")
	t.AddRow("DGCL relay planning", fmt.Sprintf("%.0f", planned), fmt.Sprintf("%.2fx", direct/planned))
	t.Note("relaying through fast intra-host links avoids congested cross-host links")
	return t
}

// Table2Serverless reproduces Dorylus' cost argument with the lambda cost
// model: 100k minibatches on 4 rented GPU servers vs 4 cheap CPU graph
// servers + lambda threads. Rather than timing this host (wall time is
// banned here), the table sweeps the MODELED per-batch compute time and
// prices both backends at each point, exposing the structure of the claim:
// lambda billing charges startup per invocation, so serverless loses below
// the ~10 ms amortisation point and wins increasingly above it — and real
// GNN batches (Dorylus', and this repo's once graphs are non-toy) sit well
// above it. The lambda pool is still exercised for real: a 64-batch probe
// runs sampled GCN forwards on it and bills METERED flops through the pool's
// own accounting, grounding the flop meter the note reports.
func Table2Serverless() *Table {
	t := &Table{ID: "tab2-serverless", Title: "Dorylus cost model: GPU servers vs CPU+serverless, 100k batches",
		Header: []string{"per-batch compute", "wall time (s)", "GPU cost", "serverless cost", "serverless advantage"}}
	model := cluster.DefaultCostModel()
	task := table2Task()
	// probe: run real sampled forwards on the lambda pool, billing metered
	// forward-pass flops (2 flops per MAC: aggregate edges×cols, transform
	// vertices×cols×hidden, both layers)
	pool := cluster.NewLambdaPool(8)
	seeds := task.TrainSeeds()
	rng := rand.New(rand.NewSource(14))
	const probeBatches = 64
	flops := make([]int64, probeBatches)
	batchSeeds := make([]graph.V, probeBatches)
	for i := range batchSeeds {
		batchSeeds[i] = seeds[rng.Intn(len(seeds))]
	}
	pool.Map(probeBatches, func(i int) int64 { return flops[i] }, func(i int) {
		sub := gnn.NeighborSample(task.G, []graph.V{batchSeeds[i]}, []int{8, 8},
			rand.New(rand.NewSource(int64(i))))
		m := gnn.NewModel(sub.Graph, gnn.GCN, []int{task.X.Cols, 16, task.NumClasses}, 1)
		idx := make([]int, len(sub.NewToOld))
		for j, v := range sub.NewToOld {
			idx[j] = int(v)
		}
		m.Forward(tensor.SelectRows(task.X, idx))
		n, e := int64(len(sub.NewToOld)), sub.Graph.NumEdges()
		flops[i] = 2 * (e*int64(task.X.Cols) + n*int64(task.X.Cols)*16 + e*16 + n*16*int64(task.NumClasses))
	})
	const batches = 100_000
	for _, perBatchMs := range []float64{0.1, 1, 10, 100} {
		computeSec := perBatchMs / 1e3 * batches
		wallSec := computeSec / 4 // 4-way parallel servers either way
		gpu := model.GPUCost(4, wallSec)
		lam := model.LambdaCost(batches, computeSec, 4, wallSec)
		t.AddRow(fmtF(perBatchMs)+" ms", fmtF(wallSec),
			fmt.Sprintf("$%.4f", gpu), fmt.Sprintf("$%.4f", lam), fmt.Sprintf("%.2fx", gpu/lam))
	}
	t.Note("probe: %d metered flops billed over %d real pool invocations (≈%d flops/batch)",
		pool.UnitsBilled(), pool.Invocations(), pool.UnitsBilled()/pool.Invocations())
	t.Note("serverless pays $%.2f/h only while computing plus %.0f ms startup per invocation; GPU servers pay $%.2f/h of rented wall time",
		model.LambdaRatePerSec*3600, model.LambdaStartupSec*1e3, model.GPURatePerSec*3600)
	t.Note("Dorylus: above the startup-amortisation point, CPU servers + lambdas are the more cost-effective backend — and sparse GNN batches sit there")
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
