package experiments

import (
	"fmt"

	"graphsys/internal/cluster"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
)

func init() {
	register("obs-hetero", "Observability: per-link traffic matrix on a heterogeneous-link (NVLink-style) topology", ObsHeteroMatrix)
}

// ObsHeteroMatrix runs PageRank over a 2-host × 4-worker cluster whose
// intra-host links are NVLink-fast (cost 0.05/B) while cross-host links cost
// 1/B, with the observability layer on, and prints the per-link traffic
// matrix plus the weighted-cost split by link class — the DGCL-style evidence
// that under hash placement the expensive cross-host links carry the bulk of
// the weighted communication cost.
func ObsHeteroMatrix() *Table {
	const (
		workers  = 8
		perHost  = 4
		fastCost = 0.05
	)
	g := gen.RMAT(10, 8, 7)
	_, res := must3(pregel.PageRank(g, 10, pregel.Config{
		Workers: workers,
		RunOptions: cluster.RunOptions{
			Trace: true,
			Topology: func(net *cluster.Network) {
				cluster.RingTopology(net, perHost, fastCost)
			},
		},
	}))
	tr := res.Trace
	tr.Workload = "pregel/pagerank-hetero"

	header := []string{"bytes from\\to"}
	for j := 0; j < workers; j++ {
		header = append(header, fmt.Sprintf("w%d", j))
	}
	t := &Table{ID: "obs-hetero", Title: "Traffic matrix, PageRank on 2 hosts × 4 workers (NVLink cost 0.05, cross-host 1)",
		Header: header}
	var intraBytes, crossBytes int64
	for i := 0; i < workers; i++ {
		row := []any{fmt.Sprintf("w%d", i)}
		for j := 0; j < workers; j++ {
			b := tr.LinkBytes[i][j]
			row = append(row, fmt.Sprint(b))
			if i == j {
				continue
			}
			if i/perHost == j/perHost {
				intraBytes += b
			} else {
				crossBytes += b
			}
		}
		t.AddRow(row...)
	}
	intraCost := float64(intraBytes) * fastCost
	crossCost := float64(crossBytes) * 1.0
	t.Note("intra-host: %d B → weighted cost %.0f (at %.2f/B); cross-host: %d B → weighted cost %.0f (at 1/B)",
		intraBytes, intraCost, fastCost, crossBytes, crossCost)
	if intraCost > 0 {
		t.Note("cross-host links carry %.1f× the weighted cost of intra-host links (%.0f%% of total cost)",
			crossCost/intraCost, 100*crossCost/(crossCost+intraCost))
	}
	t.Note("trace: %d rounds, p50/p99 round bytes %d/%d",
		len(tr.RoundSeries), tr.Skew.P50RoundBytes, tr.Skew.P99RoundBytes)
	return t
}
