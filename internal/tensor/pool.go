// Matrix buffer recycling: a size-bucketed sync.Pool for short-lived kernel
// scratch (Get/Put) and a shape-checked reuse helper (Reuse) for buffers a
// layer owns across training steps. Together they take the steady-state
// allocation rate of a training epoch to near zero without changing any
// numeric result: recycled buffers are always fully overwritten before use.
package tensor

import (
	"math/bits"
	"sync"
)

// bufPools[b] holds float32 buffers with capacity in [2^b, 2^(b+1)).
// Buffers allocated by Get always have power-of-two capacity, so a buffer
// put back into bucket b satisfies any later Get resolving to bucket b.
var bufPools [33]sync.Pool

// Get returns a rows×cols matrix whose backing buffer may be recycled from a
// previous Put. Contents are UNSPECIFIED — callers must fully overwrite them
// (the *Into kernels zero their output first, so they compose directly).
func Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	need := rows * cols
	if need == 0 {
		return &Matrix{Rows: rows, Cols: cols}
	}
	b := bits.Len(uint(need - 1))
	if v := bufPools[b].Get(); v != nil {
		return &Matrix{Rows: rows, Cols: cols, Data: v.([]float32)[:need]}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, need, 1<<b)}
}

// Put recycles m's backing buffer for a later Get. The caller must not use m
// (or any row view of it) afterwards. Putting a matrix not obtained from Get
// is allowed; its buffer joins the bucket its capacity supports.
func Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	c := cap(m.Data)
	b := bits.Len(uint(c)) - 1 // floor log2: every buffer here has cap >= 2^b
	bufPools[b].Put(m.Data[:0:c])
}

// Reuse returns m when it already has the requested shape, else a fresh zero
// matrix. It is the buffer-reuse primitive for layer-owned activations and
// gradients: shapes are stable across training steps, so after the first
// step no allocation happens. On the reuse path contents are STALE — callers
// must fully overwrite them.
func Reuse(m *Matrix, rows, cols int) *Matrix {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	return New(rows, cols)
}
