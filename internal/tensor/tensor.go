// Package tensor provides the dense float32 matrix type and operations the
// GNN training stack is built on — the stand-in for the BLAS/autograd
// substrate (PyTorch/TensorFlow) used by the surveyed GNN systems. GNN model
// computation is small dense matrix pipelines (the paper notes GNN models are
// small compared to DNNs), so a straightforward row-major implementation
// reproduces the compute structure faithfully.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices (all must have equal length).
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d (%d != %d)", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Xavier returns a matrix initialised with Glorot-uniform values,
// deterministic in seed.
func Xavier(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	limit := float32(math.Sqrt(6.0 / float64(rows+cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT1 returns aᵀ×b without materialising the transpose.
func MatMulT1(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: matmulT1 shape mismatch")
	}
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		ar, br := a.Row(r), b.Row(r)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT2 returns a×bᵀ without materialising the transpose.
func MatMulT2(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: matmulT2 shape mismatch")
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := b.Row(j)
			var s float32
			for k, av := range ar {
				s += av * br[k]
			}
			or[j] = s
		}
	}
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace adds b into a.
func (m *Matrix) AddInPlace(b *Matrix) {
	sameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// AddScaled adds scale×b into m.
func (m *Matrix) AddScaled(b *Matrix, scale float32) {
	sameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (length Cols) to every row.
func (m *Matrix) AddRowVector(v []float32) {
	if len(v) != m.Cols {
		panic("tensor: row vector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += v[j]
		}
	}
}

// Apply applies f elementwise, returning a new matrix.
func (m *Matrix) Apply(f func(float32) float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ConcatCols returns [a | b] (same row count).
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: concat row mismatch")
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols splits m into the first `at` columns and the rest.
func SplitCols(m *Matrix, at int) (*Matrix, *Matrix) {
	if at < 0 || at > m.Cols {
		panic("tensor: split out of range")
	}
	a, b := New(m.Rows, at), New(m.Rows, m.Cols-at)
	for i := 0; i < m.Rows; i++ {
		copy(a.Row(i), m.Row(i)[:at])
		copy(b.Row(i), m.Row(i)[at:])
	}
	return a, b
}

// SelectRows returns the submatrix with the given rows (in order).
func SelectRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	sameShape(a, b)
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func sameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
