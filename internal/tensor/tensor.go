// Package tensor provides the dense float32 matrix type and operations the
// GNN training stack is built on — the stand-in for the BLAS/autograd
// substrate (PyTorch/TensorFlow) used by the surveyed GNN systems. GNN model
// computation is small dense matrix pipelines (the paper notes GNN models are
// small compared to DNNs), so a straightforward row-major implementation
// reproduces the compute structure faithfully.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices (all must have equal length).
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d (%d != %d)", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Xavier returns a matrix initialised with Glorot-uniform values,
// deterministic in seed.
func Xavier(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	limit := float32(math.Sqrt(6.0 / float64(rows+cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// kBlock is the cache-blocking factor along the contraction dimension: the
// kernels process panels of kBlock rows of b (kBlock × Cols floats) so the
// panel stays hot in L1/L2 across the whole row range of a. Blocking keeps
// the per-element accumulation order (k strictly increasing), so blocked and
// naive kernels are bitwise identical.
const kBlock = 128

// MatMul returns a×b. The kernel is cache-blocked and runs on the worker
// pool above SerialWorkThreshold; results are bitwise identical at any
// parallelism level (see the determinism contract in parallel.go).
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a×b into out (which it zeroes first), allocating
// nothing. out must have shape a.Rows×b.Cols and alias neither input.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto("matmul", out, a.Rows, b.Cols, a, b)
	ParallelFor(a.Rows, int64(a.Rows)*int64(a.Cols)*int64(b.Cols), func(lo, hi int) {
		matMulRange(a, b, out, lo, hi)
	})
}

// matMulRange computes output rows [lo, hi) of a×b: the serial kernel every
// parallelism level reproduces exactly. For each element the contraction
// index k increases monotonically (across and within k-panels), matching the
// naive i-k-j loop bit for bit.
func matMulRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		or := out.Row(i)
		for j := range or {
			or[j] = 0
		}
	}
	for k0 := 0; k0 < a.Cols; k0 += kBlock {
		k1 := k0 + kBlock
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for k := k0; k < k1; k++ {
				av := ar[k]
				if av == 0 {
					continue
				}
				br := b.Row(k)
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	}
}

// MatMulT1 returns aᵀ×b without materialising the transpose.
func MatMulT1(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulT1Into(a, b, out)
	return out
}

// MatMulT1Into computes aᵀ×b into out (which it zeroes first). out must have
// shape a.Cols×b.Cols and alias neither input. Parallel goroutines own
// disjoint output-row blocks (columns of a); each accumulates over the shared
// contraction rows r in the same increasing order as the serial kernel.
func MatMulT1Into(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT1 shape mismatch %dx%dᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto("matmulT1", out, a.Cols, b.Cols, a, b)
	ParallelFor(a.Cols, int64(a.Rows)*int64(a.Cols)*int64(b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for j := range or {
				or[j] = 0
			}
		}
		for r := 0; r < a.Rows; r++ {
			ar, br := a.Row(r), b.Row(r)
			for i := lo; i < hi; i++ {
				av := ar[i]
				if av == 0 {
					continue
				}
				or := out.Row(i)
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
}

// MatMulT2 returns a×bᵀ without materialising the transpose.
func MatMulT2(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulT2Into(a, b, out)
	return out
}

// MatMulT2Into computes a×bᵀ into out (which it zeroes first). out must have
// shape a.Rows×b.Rows and alias neither input.
func MatMulT2Into(a, b, out *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT2 shape mismatch %dx%d × %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto("matmulT2", out, a.Rows, b.Rows, a, b)
	ParallelFor(a.Rows, int64(a.Rows)*int64(b.Rows)*int64(a.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				br := b.Row(j)
				var s float32
				for k, av := range ar {
					s += av * br[k]
				}
				or[j] = s
			}
		}
	})
}

// checkInto validates the output operand of an *Into kernel: exact shape and
// no aliasing with either input (the kernels zero out first, which would
// destroy an aliased input).
func checkInto(op string, out *Matrix, rows, cols int, ins ...*Matrix) {
	if out.Rows != rows || out.Cols != cols {
		panic(fmt.Sprintf("tensor: %s output %dx%d, want %dx%d", op, out.Rows, out.Cols, rows, cols))
	}
	if len(out.Data) == 0 {
		return
	}
	for _, in := range ins {
		if len(in.Data) > 0 && &in.Data[0] == &out.Data[0] {
			panic(fmt.Sprintf("tensor: %s output aliases an input", op))
		}
	}
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace adds b into a.
func (m *Matrix) AddInPlace(b *Matrix) {
	sameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// AddScaled adds scale×b into m.
func (m *Matrix) AddScaled(b *Matrix, scale float32) {
	sameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (length Cols) to every row.
func (m *Matrix) AddRowVector(v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: row vector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += v[j]
		}
	}
}

// Apply applies f elementwise, returning a new matrix.
func (m *Matrix) Apply(f func(float32) float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ConcatCols returns [a | b] (same row count).
func ConcatCols(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols+b.Cols)
	ConcatColsInto(a, b, out)
	return out
}

// ConcatColsInto writes [a | b] into out, which must be a.Rows×(a.Cols+b.Cols).
func ConcatColsInto(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: concat row mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto("concat", out, a.Rows, a.Cols+b.Cols, a, b)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
}

// SplitCols splits m into the first `at` columns and the rest.
func SplitCols(m *Matrix, at int) (*Matrix, *Matrix) {
	if at < 0 || at > m.Cols {
		panic(fmt.Sprintf("tensor: split at %d out of range for %dx%d", at, m.Rows, m.Cols))
	}
	a, b := New(m.Rows, at), New(m.Rows, m.Cols-at)
	SplitColsInto(m, a, b)
	return a, b
}

// SplitColsInto splits m into a (the first a.Cols columns) and b (the rest).
// a and b must have m.Rows rows and a.Cols+b.Cols must equal m.Cols.
func SplitColsInto(m, a, b *Matrix) {
	if a.Cols < 0 || a.Cols > m.Cols {
		panic(fmt.Sprintf("tensor: split at %d out of range for %dx%d", a.Cols, m.Rows, m.Cols))
	}
	checkInto("split", a, m.Rows, a.Cols, m)
	checkInto("split", b, m.Rows, m.Cols-a.Cols, m)
	for i := 0; i < m.Rows; i++ {
		copy(a.Row(i), m.Row(i)[:a.Cols])
		copy(b.Row(i), m.Row(i)[a.Cols:])
	}
}

// SelectRows returns the submatrix with the given rows (in order).
func SelectRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	sameShape(a, b)
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func sameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
