// Parallel execution substrate for the compute kernels: a lazily started
// worker pool sized by GOMAXPROCS, a process-wide parallelism knob, and
// deterministic range-splitting helpers.
//
// Determinism contract: every parallel kernel in this package (and the SpMM
// kernels in internal/gnn built on these helpers) partitions its OUTPUT rows
// into disjoint contiguous blocks, one owner goroutine per block, and each
// element is accumulated in exactly the same order as the serial kernel.
// There are no atomics and no cross-goroutine reductions, so results are
// bitwise identical at any parallelism level — which is what lets the
// gnndist crash-recovery tests keep asserting EXACT loss equality with
// parallel kernels enabled.
package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SerialWorkThreshold is the number of fused multiply-adds below which
// kernels stay serial: goroutine handoff costs ~1µs, so small operands (the
// common minibatch shapes) must not pay for the pool.
const SerialWorkThreshold = 1 << 16

// parallelism is the requested worker count; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// SetParallelism sets the number of goroutines the compute kernels may use.
// n <= 0 restores the default (GOMAXPROCS at call time). The setting is
// process-global: kernels are bitwise-deterministic at any level, so changing
// it mid-run affects speed, never results.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the resolved kernel worker count (always >= 1).
func Parallelism() int {
	if p := parallelism.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// workerPool is the shared kernel pool. Workers block on the unbuffered
// channel; ParallelDo falls back to running a task inline when every worker
// is busy, which both bounds concurrency and makes nested kernel calls
// deadlock-free.
var workerPool struct {
	once sync.Once
	ch   chan func()
}

func startPool() {
	workerPool.ch = make(chan func())
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for fn := range workerPool.ch {
				fn()
			}
		}()
	}
}

// ParallelDo runs the given closures concurrently on the kernel pool and
// waits for all of them. The last closure runs on the calling goroutine;
// closures that find every pool worker busy run inline on the caller too.
// Callers are responsible for making the closures write to disjoint state.
func ParallelDo(fns []func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	workerPool.once.Do(startPool)
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[:len(fns)-1] {
		task := func() {
			defer wg.Done()
			fn()
		}
		select {
		case workerPool.ch <- task:
		default:
			task()
		}
	}
	fns[len(fns)-1]()
	wg.Wait()
}

// ParallelFor splits [0, n) into at most Parallelism() contiguous chunks and
// runs fn on each concurrently. work is the total fused-multiply-add count;
// below SerialWorkThreshold (or at parallelism 1) fn runs once, inline, over
// the whole range. fn must treat its [lo, hi) block as exclusively owned.
func ParallelFor(n int, work int64, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Parallelism()
	if p <= 1 || n == 1 || work < SerialWorkThreshold {
		fn(0, n)
		return
	}
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	fns := make([]func(), 0, p)
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		fns = append(fns, func() { fn(lo, hi) })
	}
	ParallelDo(fns)
}
