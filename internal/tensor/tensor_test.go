package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("matmul = %v", c.Data)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposedMatMuls(t *testing.T) {
	a := Xavier(4, 3, 1)
	b := Xavier(4, 5, 2)
	got := MatMulT1(a, b) // aᵀ b
	want := MatMul(a.T(), b)
	if MaxAbsDiff(got, want) > 1e-6 {
		t.Fatal("MatMulT1 mismatch")
	}
	d := Xavier(6, 3, 4)
	got3 := MatMulT2(a, d) // a dᵀ: (4,3)×(3,6)
	want3 := MatMul(a, d.T())
	if MaxAbsDiff(got3, want3) > 1e-6 {
		t.Fatal("MatMulT2 mismatch")
	}
}

func TestAddScaleApply(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	c := Add(a, b)
	if c.At(0, 0) != 4 || c.At(0, 1) != 6 {
		t.Fatal("add wrong")
	}
	c.Scale(2)
	if c.At(0, 1) != 12 {
		t.Fatal("scale wrong")
	}
	d := c.Apply(func(x float32) float32 { return -x })
	if d.At(0, 0) != -8 {
		t.Fatal("apply wrong")
	}
	c.AddScaled(a, 10)
	if c.At(0, 0) != 18 {
		t.Fatal("addscaled wrong")
	}
	c.AddInPlace(a)
	if c.At(0, 0) != 19 {
		t.Fatal("addinplace wrong")
	}
}

func TestRowOps(t *testing.T) {
	m := New(3, 2)
	m.AddRowVector([]float32{1, 2})
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 1 || m.At(i, 1) != 2 {
			t.Fatal("addrowvector wrong")
		}
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("row view not aliased")
	}
}

func TestConcatSplit(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5}, {6}})
	c := ConcatCols(a, b)
	if c.Cols != 3 || c.At(0, 2) != 5 || c.At(1, 1) != 4 {
		t.Fatal("concat wrong")
	}
	x, y := SplitCols(c, 2)
	if MaxAbsDiff(x, a) != 0 || MaxAbsDiff(y, b) != 0 {
		t.Fatal("split does not invert concat")
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]float32{{1, 1}, {2, 2}, {3, 3}})
	s := SelectRows(m, []int{2, 0})
	if s.At(0, 0) != 3 || s.At(1, 0) != 1 {
		t.Fatal("select wrong")
	}
}

func TestXavierDeterministicBounded(t *testing.T) {
	a := Xavier(10, 10, 7)
	b := Xavier(10, 10, 7)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("xavier not deterministic")
	}
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range a.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %f outside xavier bound %f", v, limit)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := Xavier(5, 7, seed)
		return MaxAbsDiff(m.T().T(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := Xavier(3, 4, seed)
		b := Xavier(4, 5, seed+1)
		c := Xavier(5, 2, seed+2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm(t *testing.T) {
	m := FromRows([][]float32{{3, 4}})
	if math.Abs(m.Norm()-5) > 1e-9 {
		t.Fatalf("norm = %f", m.Norm())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}
