package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// naiveMatMul is an independent reference: the classic i-k-j loop the
// parallel blocked kernel must reproduce bit for bit.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func naiveMatMulT1(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(r, i)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(r, j)
			}
		}
	}
	return out
}

func naiveMatMulT2(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	// sprinkle exact zeros so the zero-skip path is exercised
	for i := 0; i < len(m.Data)/7; i++ {
		m.Data[rng.Intn(len(m.Data))] = 0
	}
	return m
}

func bitwiseEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %x, want %x (not bitwise equal)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulBitwiseDeterminism is the dedicated determinism test the kernel
// layer's contract requires: parallel results at any worker count are bitwise
// identical to an independent serial reference, across odd sizes, zero
// dimensions, and shapes large enough to cross SerialWorkThreshold.
func TestMatMulBitwiseDeterminism(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(8) // give the pool real concurrency even on small machines
	defer runtime.GOMAXPROCS(oldProcs)
	defer SetParallelism(0)

	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {7, 17, 33}, {33, 7, 1}, {1, 129, 1},
		{64, 64, 64}, {65, 129, 65}, {129, 64, 129}, {128, 128, 128},
		{96, 700, 96}, {257, 33, 61},
		{0, 5, 7}, {5, 0, 7}, {5, 7, 0},
	}
	rng := rand.New(rand.NewSource(42))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(m, k, rng)
		b := randMat(k, n, rng)
		wantMM := naiveMatMul(a, b)
		a2 := randMat(m, k, rng)
		b2 := randMat(m, n, rng)
		wantT1 := naiveMatMulT1(a2, b2)
		a3 := randMat(m, k, rng)
		b3 := randMat(n, k, rng)
		wantT2 := naiveMatMulT2(a3, b3)
		for _, p := range []int{1, 2, 8} {
			SetParallelism(p)
			tag := fmt.Sprintf("%dx%dx%d/p=%d", m, k, n, p)
			bitwiseEqual(t, "MatMul/"+tag, MatMul(a, b), wantMM)
			bitwiseEqual(t, "MatMulT1/"+tag, MatMulT1(a2, b2), wantT1)
			bitwiseEqual(t, "MatMulT2/"+tag, MatMulT2(a3, b3), wantT2)

			// Into variants on pooled buffers with stale contents
			out := Get(m, n)
			MatMulInto(a, b, out)
			bitwiseEqual(t, "MatMulInto/"+tag, out, wantMM)
			Put(out)
			out = Get(k, n)
			MatMulT1Into(a2, b2, out)
			bitwiseEqual(t, "MatMulT1Into/"+tag, out, wantT1)
			Put(out)
			out = Get(m, n)
			MatMulT2Into(a3, b3, out)
			bitwiseEqual(t, "MatMulT2Into/"+tag, out, wantT2)
			Put(out)
		}
		SetParallelism(0)
	}
}

func TestParallelFor(t *testing.T) {
	defer SetParallelism(0)
	for _, p := range []int{1, 2, 8, 64} {
		SetParallelism(p)
		const n = 1000
		seen := make([]int32, n)
		ParallelFor(n, 1<<20, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
	ParallelFor(0, 1<<20, func(lo, hi int) { t.Fatal("called for empty range") })
}

func TestParallelDoNested(t *testing.T) {
	// Nested ParallelDo must not deadlock (inline fallback when workers busy).
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := make([]func(), 8)
		for i := range outer {
			outer[i] = func() {
				inner := make([]func(), 8)
				for j := range inner {
					inner[j] = func() {}
				}
				ParallelDo(inner)
			}
		}
		ParallelDo(outer)
	}()
	<-done
}

func TestPoolGetPut(t *testing.T) {
	m := Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("Get(3,5) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if cap(m.Data) != 16 {
		t.Fatalf("Get(3,5) cap = %d, want power of two 16", cap(m.Data))
	}
	Put(m)
	m2 := Get(4, 4) // same bucket; may reuse the buffer
	if len(m2.Data) != 16 {
		t.Fatalf("Get(4,4) len = %d", len(m2.Data))
	}
	Put(m2)
	z := Get(0, 7)
	if z.Rows != 0 || z.Cols != 7 || len(z.Data) != 0 {
		t.Fatalf("Get(0,7) = %dx%d len %d", z.Rows, z.Cols, len(z.Data))
	}
	Put(z)
	Put(nil) // must not panic
}

func TestReuse(t *testing.T) {
	m := New(4, 6)
	if got := Reuse(m, 4, 6); got != m {
		t.Fatal("Reuse with matching shape should return the same matrix")
	}
	got := Reuse(m, 2, 3)
	if got == m || got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("Reuse with new shape: got %dx%d, same=%v", got.Rows, got.Cols, got == m)
	}
	fresh := Reuse(nil, 3, 3)
	for _, v := range fresh.Data {
		if v != 0 {
			t.Fatal("Reuse(nil, ...) must return a zero matrix")
		}
	}
}

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}

func TestShapePanicsIncludeDimensions(t *testing.T) {
	a, b := New(2, 3), New(4, 5)
	expectPanic(t, "2x3", func() { Add(a, b) })
	expectPanic(t, "4x5", func() { a.AddInPlace(b) })
	expectPanic(t, "2x3", func() { a.AddScaled(b, 2) })
	expectPanic(t, "length 2 != cols 3", func() { a.AddRowVector(make([]float32, 2)) })
	expectPanic(t, "concat row mismatch 2x3 vs 4x5", func() { ConcatCols(a, b) })
	expectPanic(t, "split at 9 out of range for 2x3", func() { SplitCols(a, 9) })
	expectPanic(t, "matmul shape mismatch 2x3 × 4x5", func() { MatMul(a, b) })
	expectPanic(t, "matmulT1 shape mismatch 2x3ᵀ × 4x5", func() { MatMulT1(a, b) })
	expectPanic(t, "matmulT2 shape mismatch 2x3 × 2x5ᵀ", func() { MatMulT2(a, New(2, 5)) })
}

func TestIntoKernelValidation(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	expectPanic(t, "output 9x9, want 2x4", func() { MatMulInto(a, b, New(9, 9)) })
	sq := New(4, 4)
	expectPanic(t, "aliases an input", func() { MatMulInto(sq, sq, sq) })
}

func benchmarkMatMul256(b *testing.B, p int) {
	SetParallelism(p)
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(7))
	x := randMat(256, 256, rng)
	y := randMat(256, 256, rng)
	out := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(x, y, out)
	}
}

func BenchmarkMatMul256Serial(b *testing.B)   { benchmarkMatMul256(b, 1) }
func BenchmarkMatMul256Parallel(b *testing.B) { benchmarkMatMul256(b, 0) }
