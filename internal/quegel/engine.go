package quegel

import (
	"fmt"
	"sync"

	"graphsys/internal/graph"
	"graphsys/internal/pregel"
	"graphsys/internal/serve"
)

// Engine is the serving-tier face of Quegel: it implements
// serve.Engine[Query, Answer] over a serve.Batcher whose shared runs are
// AnswerBatched — every batch window pays one superstep sequence for all of
// its queries (superstep-sharing), and the serving tier supplies admission
// control, per-query deadlines, cancellation and batch-window policy on top.
//
// The deprecated Server keeps the original synchronous Submit/Flush surface.
type Engine struct {
	g *graph.Graph
	b *serve.Batcher[Query, Answer]

	mu      sync.Mutex
	stats   Stats // cumulative over all batch runs
	batches int
}

var _ serve.Engine[Query, Answer] = (*Engine)(nil)

// NewEngine starts a batched path-query engine over g. opts.Workers sizes the
// underlying vertex-centric engine's cluster; opts.Batch caps the batch
// window (0 = fold everything queued into the next run). Returns
// serve.ErrInvalidRequest for a nil graph or invalid policy.
func NewEngine(g *graph.Graph, opts serve.Options) (*Engine, error) {
	if g == nil {
		return nil, serve.ErrInvalidRequest
	}
	e := &Engine{g: g}
	cfg := pregel.Config{Workers: opts.Workers}
	b, err := serve.NewBatcher[Query, Answer](opts, func(batch []Query) ([]Answer, error) {
		ans, st, err := AnswerBatched(e.g, batch, cfg)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.stats.Supersteps += st.Supersteps
		e.stats.Messages += st.Messages
		e.batches++
		e.mu.Unlock()
		return ans, nil
	})
	if err != nil {
		return nil, err
	}
	e.b = b
	return e, nil
}

// Submit admits one point-to-point query. Endpoints outside the graph are
// rejected with serve.ErrInvalidRequest (typed, never a downstream panic);
// admission-control rejections return serve.ErrQueueFull; after Close,
// serve.ErrClosed.
func (e *Engine) Submit(req serve.Request[Query]) (*serve.Ticket[Answer], error) {
	n := graph.V(e.g.NumVertices())
	if req.Query.Src < 0 || req.Query.Src >= n || req.Query.Dst < 0 || req.Query.Dst >= n {
		return nil, fmt.Errorf("%w: query endpoints (%d,%d) outside graph of %d vertices",
			serve.ErrInvalidRequest, req.Query.Src, req.Query.Dst, n)
	}
	return e.b.Submit(req)
}

// Drain blocks until every admitted query has reached a terminal state.
func (e *Engine) Drain() { e.b.Drain() }

// Close drains pending queries, then stops the serving loop. Safe to call
// more than once.
func (e *Engine) Close() error { return e.b.Close() }

// Metrics returns the engine's admission and completion counters.
func (e *Engine) Metrics() serve.Metrics { return e.b.Metrics() }

// Stats returns the cumulative execution cost over all batch runs so far and
// the number of shared runs paid — the superstep-sharing ledger.
func (e *Engine) Stats() (Stats, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats, e.batches
}
