package quegel

import (
	"math/rand"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
)

func TestBatchedMatchesSequential(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, 1)
	rng := rand.New(rand.NewSource(2))
	var queries []Query
	for i := 0; i < 12; i++ {
		queries = append(queries, Query{
			Src: graph.V(rng.Intn(300)), Dst: graph.V(rng.Intn(300)),
		})
	}
	cfg := pregel.Config{Workers: 4}
	batched, bstats, err := AnswerBatched(g, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sequential, sstats, err := AnswerSequential(g, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if batched[i].Dist != sequential[i].Dist {
			t.Fatalf("query %d: batched %d vs sequential %d", i, batched[i].Dist, sequential[i].Dist)
		}
		// cross-check against serial BFS
		want := graph.BFSLevels(g, queries[i].Src)[queries[i].Dst]
		if batched[i].Dist != want {
			t.Fatalf("query %d: %d, BFS says %d", i, batched[i].Dist, want)
		}
	}
	// superstep sharing: batched rounds = max per-query, not sum
	if bstats.Supersteps >= sstats.Supersteps/3 {
		t.Fatalf("batched %d rounds not well below sequential %d", bstats.Supersteps, sstats.Supersteps)
	}
}

func TestUnreachableQuery(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {2, 3}})
	ans, _, _ := AnswerBatched(g, []Query{{Src: 0, Dst: 3}, {Src: 0, Dst: 1}, {Src: 2, Dst: 2}},
		pregel.Config{Workers: 2})
	if ans[0].Dist != -1 {
		t.Fatalf("cross-component distance %d", ans[0].Dist)
	}
	if ans[1].Dist != 1 {
		t.Fatalf("adjacent distance %d", ans[1].Dist)
	}
	if ans[2].Dist != 0 {
		t.Fatalf("self distance %d", ans[2].Dist)
	}
}

func TestServerBatching(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	s := NewServer(g, 4)
	s.Submit(Query{Src: 0, Dst: 100})
	s.Submit(Query{Src: 5, Dst: 150})
	ans, st, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers %d", len(ans))
	}
	if st.Supersteps == 0 {
		t.Fatal("no rounds recorded")
	}
	for i, q := range []Query{{0, 100}, {5, 150}} {
		want := graph.BFSLevels(g, q.Src)[q.Dst]
		if ans[i].Dist != want {
			t.Fatalf("query %d wrong", i)
		}
	}
	// flush with nothing pending
	ans2, _, _ := s.Flush()
	if ans2 != nil {
		t.Fatal("empty flush returned answers")
	}
}
