package quegel

import (
	"errors"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
	"graphsys/internal/serve"
)

func TestEngineMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 9)
	queries := []Query{
		{Src: 0, Dst: 399}, {Src: 10, Dst: 20}, {Src: 5, Dst: 5},
		{Src: 100, Dst: 300}, {Src: 399, Dst: 0}, {Src: 42, Dst: 7},
	}
	want, _, err := AnswerSequential(g, queries, pregel.Config{Workers: 4})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	eng, err := NewEngine(g, serve.Options{Workers: 4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	var tks []*serve.Ticket[Answer]
	for _, q := range queries {
		tk, err := eng.Submit(serve.Request[Query]{Query: q})
		if err != nil {
			t.Fatalf("submit %+v: %v", q, err)
		}
		tks = append(tks, tk)
	}
	eng.Drain()
	for i, tk := range tks {
		got, err := tk.Wait()
		if err != nil || got.Dist != want[i].Dist {
			t.Fatalf("query %d: got (%v, %v), want dist %d", i, got, err, want[i].Dist)
		}
	}
	st, batches := eng.Stats()
	if batches < 1 || st.Supersteps < 1 {
		t.Fatalf("stats: %+v over %d batches", st, batches)
	}
	if m := eng.Metrics(); m.Completed != int64(len(queries)) {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestEngineRejectsOutOfRangeEndpoints(t *testing.T) {
	g := gen.Grid(3, 3)
	eng, err := NewEngine(g, serve.Options{Workers: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	for _, q := range []Query{{Src: -1, Dst: 0}, {Src: 0, Dst: 9}, {Src: 100, Dst: 100}} {
		if _, err := eng.Submit(serve.Request[Query]{Query: q}); !errors.Is(err, serve.ErrInvalidRequest) {
			t.Fatalf("query %+v: %v, want ErrInvalidRequest", q, err)
		}
	}
	// in-range queries still served after rejections
	tk, err := eng.Submit(serve.Request[Query]{Query: Query{Src: 0, Dst: 8}})
	if err != nil {
		t.Fatalf("valid submit: %v", err)
	}
	if a, err := tk.Wait(); err != nil || a.Dist != 4 {
		t.Fatalf("corner-to-corner on 3x3 grid: (%v, %v), want dist 4", a, err)
	}
	if _, err := NewEngine(nil, serve.Options{}); !errors.Is(err, serve.ErrInvalidRequest) {
		t.Fatalf("nil graph: %v", err)
	}
}

func TestEngineClosedAndShedding(t *testing.T) {
	g := gen.Grid(4, 4)
	eng, err := NewEngine(g, serve.Options{Workers: 2, QueueLimit: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// burst faster than the serving loop can drain a 1-slot queue: at least
	// one submission must be shed with the typed error
	shed := false
	var last *serve.Ticket[Answer]
	for i := 0; i < 200 && !shed; i++ {
		tk, err := eng.Submit(serve.Request[Query]{Query: Query{Src: 0, Dst: graph.V(i % 16)}})
		switch {
		case err == nil:
			last = tk
		case errors.Is(err, serve.ErrQueueFull):
			shed = true
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !shed {
		t.Fatal("no submission shed despite QueueLimit 1")
	}
	if last != nil {
		if _, err := last.Wait(); err != nil {
			t.Fatalf("admitted query failed: %v", err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := eng.Submit(serve.Request[Query]{Query: Query{Src: 0, Dst: 1}}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if m := eng.Metrics(); m.Rejected < 1 {
		t.Fatalf("metrics: %+v", m)
	}
}
