// Package quegel implements the query-centric TLAV model of Quegel (Zhang,
// Yan, Cheng — SIGMOD'16 / PVLDB'16), another system of the paper's
// presenters referenced in §7: many light vertex-centric QUERIES (here:
// point-to-point shortest paths) execute against one loaded big graph, and
// instead of paying a full superstep barrier sequence per query, concurrent
// queries are batched so every superstep serves all in-flight queries at
// once — superstep-sharing, the system's core idea.
package quegel

import (
	"graphsys/internal/cluster"
	"graphsys/internal/det"
	"graphsys/internal/graph"
	"graphsys/internal/obs"
	"graphsys/internal/pregel"
)

// Query asks for the hop distance from Src to Dst.
type Query struct {
	Src, Dst graph.V
}

// Answer is the hop distance (-1 if unreachable).
type Answer struct {
	Dist int32
}

// Stats reports the execution cost of serving a query set.
type Stats struct {
	Supersteps int   // total barrier rounds paid
	Messages   int64 // total messages
	// Trace is the shared run's observability trace (batched execution with
	// pregel.Config.Trace set; nil for sequential serving, which pays one
	// engine run per query).
	Trace *obs.Trace
}

type qmsg struct {
	qid  int32
	dist int32
}

// AnswerBatched serves all queries in ONE vertex-centric run: per-vertex
// state holds one distance per in-flight query, messages are tagged with the
// query id, and every superstep advances all BFS frontiers together. The
// barrier count is max(per-query rounds), not the sum — Quegel's
// superstep-sharing.
//
// Messages are combined sender-side per (destination vertex, query id) by
// the substrate's hoisted combiner: when several neighbors on one worker
// reach the same vertex for the same query in one superstep, only the
// minimum distance crosses the network. CombineKey keeps distinct queries'
// frontiers apart — min-combining across query ids would corrupt answers.
func AnswerBatched(g *graph.Graph, queries []Query, cfg pregel.Config) ([]Answer, Stats, error) {
	prog := pregel.Program[map[int32]int32, qmsg]{
		Combine: func(a, b qmsg) qmsg {
			if b.dist < a.dist {
				return b
			}
			return a
		},
		CombineKey: func(m qmsg) int32 { return m.qid },
		Init: func(g *graph.Graph, v graph.V) map[int32]int32 {
			st := map[int32]int32{}
			for qi, q := range queries {
				if q.Src == v {
					st[int32(qi)] = 0
				}
			}
			return st
		},
		Compute: func(ctx *pregel.Context[qmsg], v graph.V, state *map[int32]int32, msgs []qmsg) {
			if ctx.Superstep() == 0 {
				// sorted query ids: message emission order must not inherit
				// Go's randomised map order (graphlint maprange)
				for _, qid := range det.SortedKeys(*state) {
					for _, u := range ctx.Graph().Neighbors(v) {
						ctx.Send(u, qmsg{qid, (*state)[qid] + 1})
					}
				}
				ctx.VoteToHalt()
				return
			}
			improved := map[int32]int32{}
			for _, m := range msgs {
				if cur, ok := (*state)[m.qid]; !ok || m.dist < cur {
					(*state)[m.qid] = m.dist
					if best, seen := improved[m.qid]; !seen || m.dist < best {
						improved[m.qid] = m.dist
					}
				}
			}
			for _, qid := range det.SortedKeys(improved) {
				for _, u := range ctx.Graph().Neighbors(v) {
					ctx.Send(u, qmsg{qid, improved[qid] + 1})
				}
			}
			ctx.VoteToHalt()
		},
	}
	res, err := pregel.Run(g, prog, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]Answer, len(queries))
	for qi, q := range queries {
		if d, ok := res.States[q.Dst][int32(qi)]; ok {
			out[qi] = Answer{Dist: d}
		} else {
			out[qi] = Answer{Dist: -1}
		}
	}
	if res.Trace != nil {
		res.Trace.Workload = "quegel/batched"
	}
	return out, Stats{Supersteps: res.Supersteps, Messages: res.Net.Messages + res.Net.LocalMessages, Trace: res.Trace}, nil
}

// AnswerSequential serves queries one at a time, each paying its own full
// sequence of supersteps (the offline-TLAV baseline Quegel improves on).
func AnswerSequential(g *graph.Graph, queries []Query, cfg pregel.Config) ([]Answer, Stats, error) {
	var st Stats
	out := make([]Answer, len(queries))
	for qi, q := range queries {
		dists, res, err := pregel.SSSP(g, q.Src, cfg)
		if err != nil {
			return nil, Stats{}, err
		}
		out[qi] = Answer{Dist: dists[q.Dst]}
		st.Supersteps += res.Supersteps
		st.Messages += res.Net.Messages + res.Net.LocalMessages
	}
	return out, st, nil
}

// Server is the original interactive face: it accumulates queries and serves
// each batch with one shared run (Quegel's batching window), synchronously.
//
// Deprecated: use NewEngine with serve.Options — the serving tier adds
// asynchronous submission with tickets, admission control, deadlines,
// cancellation and typed errors over the same AnswerBatched core.
type Server struct {
	g       *graph.Graph
	cfg     pregel.Config
	pending []Query
	net     cluster.Stats
}

// NewServer creates a query server over g.
func NewServer(g *graph.Graph, workers int) *Server {
	return &Server{g: g, cfg: pregel.Config{Workers: workers}}
}

// Submit adds a query to the current batch.
func (s *Server) Submit(q Query) { s.pending = append(s.pending, q) }

// Flush answers the whole pending batch in one shared run.
func (s *Server) Flush() ([]Answer, Stats, error) {
	qs := s.pending
	s.pending = nil
	if len(qs) == 0 {
		return nil, Stats{}, nil
	}
	return AnswerBatched(s.g, qs, s.cfg)
}
