package tthinker

import (
	"sort"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// naive maximal clique enumeration for cross-checking (exponential).
func naiveMaximalCliques(g *graph.Graph) [][]graph.V {
	n := g.NumVertices()
	var out [][]graph.V
	var subsets func(i int, cur []graph.V)
	isClique := func(s []graph.V) bool {
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				if !g.HasEdge(s[i], s[j]) {
					return false
				}
			}
		}
		return true
	}
	subsets = func(i int, cur []graph.V) {
		if i == n {
			if len(cur) == 0 || !isClique(cur) {
				return
			}
			// maximal?
			for v := graph.V(0); int(v) < n; v++ {
				if containsV(cur, v) {
					continue
				}
				ok := true
				for _, u := range cur {
					if !g.HasEdge(u, v) {
						ok = false
						break
					}
				}
				if ok {
					return
				}
			}
			out = append(out, append([]graph.V(nil), cur...))
			return
		}
		subsets(i+1, cur)
		subsets(i+1, append(cur, graph.V(i)))
	}
	subsets(0, nil)
	return out
}

func containsV(s []graph.V, v graph.V) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestMaximalCliquesOnKnownGraphs(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		count int64
		maxSz int
	}{
		{gen.Clique(5), 1, 5},
		{gen.Grid(3, 3), 12, 2}, // every edge is a maximal clique in a grid
		{graph.FromEdges(5, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}), 3, 3},
	}
	for i, c := range cases {
		res, _ := MaximalCliques(c.g, false, Config{Workers: 4})
		if res.Count != c.count {
			t.Errorf("case %d: count=%d want %d", i, res.Count, c.count)
		}
		if len(res.Largest) != c.maxSz {
			t.Errorf("case %d: largest=%d want %d", i, len(res.Largest), c.maxSz)
		}
	}
}

func TestMaximalCliquesMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ErdosRenyi(14, 40, seed)
		want := naiveMaximalCliques(g)
		res, _ := MaximalCliques(g, true, Config{Workers: 3})
		if int(res.Count) != len(want) {
			t.Fatalf("seed %d: count=%d want %d", seed, res.Count, len(want))
		}
		// compare sets
		norm := func(cs [][]graph.V) map[string]bool {
			m := map[string]bool{}
			for _, c := range cs {
				c = append([]graph.V(nil), c...)
				sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
				key := ""
				for _, v := range c {
					key += string(rune(v)) + ","
				}
				m[key] = true
			}
			return m
		}
		a, b := norm(res.Cliques), norm(want)
		for k := range b {
			if !a[k] {
				t.Fatalf("seed %d: missing clique", seed)
			}
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("seed %d: spurious clique", seed)
			}
		}
	}
}

func TestMaximalCliquesWithSplitting(t *testing.T) {
	g := gen.ErdosRenyi(60, 500, 5)
	resNoSplit, _ := MaximalCliques(g, false, Config{Workers: 4})
	resSplit, stats := MaximalCliques(g, false, Config{Workers: 4, Budget: 5})
	if resSplit.Count != resNoSplit.Count {
		t.Fatalf("splitting changed result: %d vs %d", resSplit.Count, resNoSplit.Count)
	}
	if stats.Splits == 0 {
		t.Fatal("expected task splits with tiny budget")
	}
	if stats.Tasks <= int64(g.NumVertices()) {
		t.Fatalf("expected more tasks than roots, got %d", stats.Tasks)
	}
}

func TestMaximumClique(t *testing.T) {
	// K6 planted in a sparse random graph
	b := graph.NewBuilder(60, false)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	er := gen.ErdosRenyi(60, 120, 3)
	er.EdgesOnce(func(u, v graph.V) { b.AddEdge(u, v) })
	g := b.Build()
	best, _ := MaximumClique(g, Config{Workers: 4})
	if len(best) < 6 {
		t.Fatalf("maximum clique size %d, want >= 6", len(best))
	}
	// verify it is a clique
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if !g.HasEdge(best[i], best[j]) {
				t.Fatal("returned set is not a clique")
			}
		}
	}
}

func TestMaximumCliqueEqualsBKLargest(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(40, 250, seed)
		bk, _ := MaximalCliques(g, false, Config{Workers: 4})
		mc, _ := MaximumClique(g, Config{Workers: 4, Budget: 50})
		if len(mc) != len(bk.Largest) {
			t.Fatalf("seed %d: B&B found %d, BK found %d", seed, len(mc), len(bk.Largest))
		}
	}
}

func TestQuasiCliquesGamma1IsCliques(t *testing.T) {
	// with γ=1 quasi-cliques are cliques
	g := gen.Clique(4)
	sets, _ := QuasiCliques(g, 1.0, 3, Config{Workers: 2})
	if len(sets) != 1 || len(sets[0]) != 4 {
		t.Fatalf("γ=1 on K4: %v", sets)
	}
}

func TestQuasiCliquesFindPlanted(t *testing.T) {
	// near-clique: K5 minus one edge is a 0.7-quasi-clique (min degree 3 ≥ ⌈0.7·4⌉=3)
	b := graph.NewBuilder(10, false)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if u == 0 && v == 1 {
				continue
			}
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	b.AddEdge(5, 6)
	g := b.Build()
	sets, _ := QuasiCliques(g, 0.7, 5, Config{Workers: 2})
	found := false
	for _, s := range sets {
		if len(s) == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted quasi-clique not found: %v", sets)
	}
}

func TestIsQuasiClique(t *testing.T) {
	g := gen.Clique(4)
	if !IsQuasiClique(g, []graph.V{0, 1, 2, 3}, 1.0) {
		t.Fatal("K4 must be a 1.0-quasi-clique")
	}
	p := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}})
	if IsQuasiClique(p, []graph.V{0, 1, 2}, 1.0) {
		t.Fatal("path is not a 1.0-quasi-clique")
	}
	if !IsQuasiClique(p, []graph.V{0, 1, 2}, 0.5) {
		t.Fatal("path IS a 0.5-quasi-clique (min degree 1 ≥ ⌈0.5·2⌉=1)")
	}
}

func TestTrussDecomposition(t *testing.T) {
	// K4: every edge has truss number 4
	truss := TrussDecomposition(gen.Clique(4))
	if len(truss) != 6 {
		t.Fatalf("K4 has %d edges in decomposition", len(truss))
	}
	for e, k := range truss {
		if k != 4 {
			t.Fatalf("edge %v truss=%d want 4", e, k)
		}
	}
	// path: all edges truss 2
	for e, k := range TrussDecomposition(graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}})) {
		if k != 2 {
			t.Fatalf("path edge %v truss=%d want 2", e, k)
		}
	}
}

func TestKTrussSubgraph(t *testing.T) {
	// K5 plus pendant path: 4-truss (and 5-truss) is exactly the K5
	b := graph.NewBuilder(8, false)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	g := b.Build()
	vs := KTrussSubgraph(g, 4)
	if len(vs) != 5 {
		t.Fatalf("4-truss = %v", vs)
	}
	if MaxTruss(g) != 5 {
		t.Fatalf("max truss = %d", MaxTruss(g))
	}
}

func TestEngineWorkStealingOccurs(t *testing.T) {
	// all roots on worker 0's queue initially? roots are round-robin, so make
	// a skewed workload: one heavy root that splits, many trivial ones.
	g := gen.ErdosRenyi(80, 1200, 1)
	_, stats := MaximalCliques(g, false, Config{Workers: 8, Budget: 3})
	if stats.Steals == 0 {
		t.Log("no steals observed (may legitimately happen on balanced queues)")
	}
	if stats.Tasks == 0 {
		t.Fatal("no tasks ran")
	}
}

func TestRunEmptyRoots(t *testing.T) {
	total, stats := Run(nil, func(ctx *Ctx[int, int], t int) { ctx.Emit(t) },
		func(a, b int) int { return a + b }, Config{Workers: 2})
	if total != 0 || stats.Tasks != 0 {
		t.Fatalf("empty run: total=%d tasks=%d", total, stats.Tasks)
	}
}

func TestRunMergesAcrossWorkers(t *testing.T) {
	roots := make([]int, 100)
	for i := range roots {
		roots[i] = i
	}
	total, stats := Run(roots, func(ctx *Ctx[int, int], t int) { ctx.Emit(t) },
		func(a, b int) int { return a + b }, Config{Workers: 7})
	if total != 99*100/2 {
		t.Fatalf("total=%d", total)
	}
	if stats.Tasks != 100 {
		t.Fatalf("tasks=%d", stats.Tasks)
	}
}
