package tthinker

import (
	"sort"
	"sync/atomic"

	"graphsys/internal/graph"
)

// CliqueTask is a Bron–Kerbosch search-tree node: R is the current clique,
// P the candidates, X the excluded vertices. One root task per vertex under
// the degeneracy ordering keeps tasks balanced and the candidate sets small,
// the standard G-thinker decomposition for clique mining.
type CliqueTask struct {
	R, P, X []graph.V
}

// CliqueResult is the mergeable result of clique mining.
type CliqueResult struct {
	Count   int64
	Largest []graph.V
	Cliques [][]graph.V // populated only when collecting
}

func mergeCliqueResults(a, b CliqueResult) CliqueResult {
	a.Count += b.Count
	if len(b.Largest) > len(a.Largest) {
		a.Largest = b.Largest
	}
	a.Cliques = append(a.Cliques, b.Cliques...)
	return a
}

// cliqueRootTasks builds one task per vertex using the degeneracy order:
// P = later neighbors, X = earlier neighbors.
func cliqueRootTasks(g *graph.Graph) []CliqueTask {
	order, _ := graph.DegeneracyOrder(g)
	return cliqueRootTasksOrdered(g, order)
}

// cliqueRootTasksNatural uses raw vertex-id order — the ablation baseline
// showing why degeneracy ordering matters (larger candidate sets, deeper
// search trees).
func cliqueRootTasksNatural(g *graph.Graph) []CliqueTask {
	order := make([]graph.V, g.NumVertices())
	for i := range order {
		order[i] = graph.V(i)
	}
	return cliqueRootTasksOrdered(g, order)
}

func cliqueRootTasksOrdered(g *graph.Graph, order []graph.V) []CliqueTask {
	pos := make([]int, g.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	tasks := make([]CliqueTask, 0, len(order))
	for _, v := range order {
		var p, x []graph.V
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				p = append(p, w)
			} else {
				x = append(x, w)
			}
		}
		tasks = append(tasks, CliqueTask{R: []graph.V{v}, P: p, X: x})
	}
	return tasks
}

// MaximalCliques enumerates all maximal cliques of g with task-parallel
// Bron–Kerbosch with pivoting. If collect is true the cliques themselves are
// returned (memory permitting); otherwise only the count and one largest
// clique are tracked.
func MaximalCliques(g *graph.Graph, collect bool, cfg Config) (CliqueResult, Stats) {
	process := func(ctx *Ctx[CliqueTask, CliqueResult], t CliqueTask) {
		bkPivot(g, ctx, t.R, t.P, t.X, collect)
	}
	return Run(cliqueRootTasks(g), process, mergeCliqueResults, cfg)
}

// MaximalCliquesNaturalOrder is MaximalCliques with vertex-id root ordering
// instead of the degeneracy ordering — the ablation baseline for
// BenchmarkAblation_Ordering.
func MaximalCliquesNaturalOrder(g *graph.Graph, collect bool, cfg Config) (CliqueResult, Stats) {
	process := func(ctx *Ctx[CliqueTask, CliqueResult], t CliqueTask) {
		bkPivot(g, ctx, t.R, t.P, t.X, collect)
	}
	return Run(cliqueRootTasksNatural(g), process, mergeCliqueResults, cfg)
}

// MaximalCliquesNoPivot runs Bron–Kerbosch WITHOUT pivot selection — the
// ablation baseline showing why every serious clique miner pivots: the
// search tree visits every clique (not just maximal ones).
func MaximalCliquesNoPivot(g *graph.Graph, collect bool, cfg Config) (CliqueResult, Stats) {
	process := func(ctx *Ctx[CliqueTask, CliqueResult], t CliqueTask) {
		bkPlain(g, ctx, t.R, t.P, t.X, collect)
	}
	return Run(cliqueRootTasks(g), process, mergeCliqueResults, cfg)
}

// bkPlain is Bron–Kerbosch without pivoting.
func bkPlain(g *graph.Graph, ctx *Ctx[CliqueTask, CliqueResult], r, p, x []graph.V, collect bool) {
	ctx.Tick()
	if len(p) == 0 && len(x) == 0 {
		res := CliqueResult{Count: 1, Largest: append([]graph.V(nil), r...)}
		if collect {
			res.Cliques = [][]graph.V{append([]graph.V(nil), r...)}
		}
		ctx.Emit(res)
		return
	}
	p2 := append([]graph.V(nil), p...)
	x2 := append([]graph.V(nil), x...)
	for len(p2) > 0 {
		v := p2[len(p2)-1]
		p2 = p2[:len(p2)-1]
		nr := append(append([]graph.V(nil), r...), v)
		np := intersectAdj(g, v, p2)
		nx := intersectAdj(g, v, x2)
		if ctx.ShouldSplit() {
			ctx.Splitted()
			ctx.Spawn(CliqueTask{R: nr, P: np, X: nx})
		} else {
			bkPlain(g, ctx, nr, np, nx, collect)
		}
		x2 = append(x2, v)
	}
}

// bkPivot is Bron–Kerbosch with pivoting. When the task budget is exhausted
// it spawns the remaining branches as tasks instead of recursing (G-thinker's
// split of a long-running task).
func bkPivot(g *graph.Graph, ctx *Ctx[CliqueTask, CliqueResult], r, p, x []graph.V, collect bool) {
	ctx.Tick()
	if len(p) == 0 && len(x) == 0 {
		res := CliqueResult{Count: 1, Largest: append([]graph.V(nil), r...)}
		if collect {
			res.Cliques = [][]graph.V{append([]graph.V(nil), r...)}
		}
		ctx.Emit(res)
		return
	}
	if len(p) == 0 {
		return
	}
	// pivot: vertex of P∪X with most neighbors in P
	pivot, best := graph.V(-1), -1
	for _, cand := range [][]graph.V{p, x} {
		for _, u := range cand {
			c := countIn(g, u, p)
			if c > best {
				pivot, best = u, c
			}
		}
	}
	// branch on P \ N(pivot)
	var branch []graph.V
	for _, v := range p {
		if !g.HasEdge(pivot, v) {
			branch = append(branch, v)
		}
	}
	p2 := append([]graph.V(nil), p...)
	x2 := append([]graph.V(nil), x...)
	for _, v := range branch {
		nr := append(append([]graph.V(nil), r...), v)
		np := intersectAdj(g, v, p2)
		nx := intersectAdj(g, v, x2)
		if ctx.ShouldSplit() {
			ctx.Splitted()
			ctx.Spawn(CliqueTask{R: nr, P: np, X: nx})
		} else {
			bkPivot(g, ctx, nr, np, nx, collect)
		}
		p2 = remove(p2, v)
		x2 = append(x2, v)
	}
}

func countIn(g *graph.Graph, u graph.V, set []graph.V) int {
	c := 0
	for _, v := range set {
		if g.HasEdge(u, v) {
			c++
		}
	}
	return c
}

func intersectAdj(g *graph.Graph, u graph.V, set []graph.V) []graph.V {
	var out []graph.V
	for _, v := range set {
		if g.HasEdge(u, v) {
			out = append(out, v)
		}
	}
	return out
}

func remove(set []graph.V, v graph.V) []graph.V {
	for i, x := range set {
		if x == v {
			return append(set[:i], set[i+1:]...)
		}
	}
	return set
}

// MaximumClique finds one maximum clique using task-parallel branch-and-bound
// with a globally shared incumbent size (the shared bound is how G-thinker's
// distributed B&B prunes across workers).
func MaximumClique(g *graph.Graph, cfg Config) ([]graph.V, Stats) {
	var best atomic.Int64
	type res = CliqueResult
	process := func(ctx *Ctx[CliqueTask, res], t CliqueTask) {
		maxCliqueBB(g, ctx, &best, t.R, t.P)
	}
	roots := cliqueRootTasks(g)
	// larger candidate sets first: improves the incumbent early
	sort.Slice(roots, func(i, j int) bool { return len(roots[i].P) > len(roots[j].P) })
	out, stats := Run(roots, process, mergeCliqueResults, cfg)
	return out.Largest, stats
}

func maxCliqueBB(g *graph.Graph, ctx *Ctx[CliqueTask, CliqueResult], best *atomic.Int64, r, p []graph.V) {
	ctx.Tick()
	if int64(len(r)) > best.Load() {
		// try to install the new incumbent
		for {
			cur := best.Load()
			if int64(len(r)) <= cur {
				break
			}
			if best.CompareAndSwap(cur, int64(len(r))) {
				ctx.Emit(CliqueResult{Largest: append([]graph.V(nil), r...)})
				break
			}
		}
	}
	if int64(len(r)+len(p)) <= best.Load() {
		return // bound: cannot beat incumbent
	}
	p2 := append([]graph.V(nil), p...)
	for len(p2) > 0 {
		if int64(len(r)+len(p2)) <= best.Load() {
			return
		}
		v := p2[len(p2)-1]
		p2 = p2[:len(p2)-1]
		np := intersectAdj(g, v, p2)
		nr := append(append([]graph.V(nil), r...), v)
		if ctx.ShouldSplit() {
			ctx.Splitted()
			ctx.Spawn(CliqueTask{R: nr, P: np})
		} else {
			maxCliqueBB(g, ctx, best, nr, np)
		}
	}
}
