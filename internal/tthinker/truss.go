package tthinker

import (
	"graphsys/internal/graph"
)

// TrussDecomposition computes the truss number of every undirected edge: the
// largest k such that the edge belongs to the k-truss (the maximal subgraph
// where every edge is supported by ≥ k-2 triangles). k-truss is the standard
// community-search structure analytic (Figure 1 path 3). The implementation
// is the peeling algorithm: compute supports, then repeatedly remove the
// edge of minimum support.
func TrussDecomposition(g *graph.Graph) map[[2]graph.V]int32 {
	type edge = [2]graph.V
	norm := func(u, v graph.V) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	support := map[edge]int32{}
	alive := map[edge]bool{}
	g.EdgesOnce(func(u, v graph.V) {
		e := norm(u, v)
		alive[e] = true
		support[e] = 0
	})
	g.EdgesOnce(func(u, v graph.V) {
		a, b := g.Neighbors(u), g.Neighbors(v)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				support[norm(u, v)]++
				i++
				j++
			}
		}
	})
	truss := make(map[edge]int32, len(alive))
	k := int32(2)
	remaining := len(alive)
	for remaining > 0 {
		// peel all edges with support <= k-2
		var queue []edge
		for e, ok := range alive {
			if ok && support[e] <= k-2 {
				queue = append(queue, e)
			}
		}
		if len(queue) == 0 {
			k++
			continue
		}
		for len(queue) > 0 {
			e := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if !alive[e] {
				continue
			}
			alive[e] = false
			truss[e] = k
			remaining--
			u, v := e[0], e[1]
			// decrement support of triangles through e
			a, b := g.Neighbors(u), g.Neighbors(v)
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					w := a[i]
					e1, e2 := norm(u, w), norm(v, w)
					if alive[e1] && alive[e2] {
						support[e1]--
						support[e2]--
						if support[e1] <= k-2 {
							queue = append(queue, e1)
						}
						if support[e2] <= k-2 {
							queue = append(queue, e2)
						}
					}
					i++
					j++
				}
			}
		}
	}
	return truss
}

// KTrussSubgraph returns the vertices of the maximal k-truss of g (vertices
// incident to an edge of truss number ≥ k).
func KTrussSubgraph(g *graph.Graph, k int32) []graph.V {
	truss := TrussDecomposition(g)
	in := map[graph.V]bool{}
	for e, t := range truss {
		if t >= k {
			in[e[0]] = true
			in[e[1]] = true
		}
	}
	out := make([]graph.V, 0, len(in))
	for v := range in {
		out = append(out, v)
	}
	sortV(out)
	return out
}

// MaxTruss returns the largest k with a non-empty k-truss.
func MaxTruss(g *graph.Graph) int32 {
	truss := TrussDecomposition(g)
	var max int32
	for _, t := range truss {
		if t > max {
			max = t
		}
	}
	return max
}

func sortV(vs []graph.V) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
