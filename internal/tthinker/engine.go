// Package tthinker implements the think-like-a-task (T-thinker / G-thinker)
// computing model the paper presents as the answer to subgraph search: work
// is decomposed into independent subgraph tasks that backtrack depth-first
// WITHOUT materialising intermediate subgraph instances, with per-worker task
// queues, work stealing for load balancing, and budget-based task splitting
// so that a straggler task (e.g. a dense community) is divided rather than
// serialising the run — the key G-thinker design points (Yan et al., ICDE'20
// / VLDBJ'22).
package tthinker

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls a task engine run.
type Config struct {
	Workers int // default GOMAXPROCS
	// Budget is the number of ctx.Tick() calls a task may consume before
	// ShouldSplit reports true (G-thinker's timeout-based splitting, with
	// deterministic ticks standing in for wall-clock). 0 = never split.
	Budget int64
}

// Stats reports engine-level counters, the load-balancing evidence the
// G-thinker papers report.
type Stats struct {
	Tasks  int64 // tasks executed
	Steals int64 // successful steals
	Splits int64 // tasks that elected to split (reported by app via Splitted)
	Ticks  int64 // total Tick() calls — the search-tree size across all tasks
	// MaxTaskTicks is the largest single task (in ticks): the granularity
	// bound that limits achievable parallelism. Budget-based splitting
	// exists to keep this near the budget.
	MaxTaskTicks int64
}

// Ctx is passed to every task execution.
type Ctx[T, R any] struct {
	eng    *engine[T, R]
	worker int
	ticks  int64
	budget int64
	local  R
	merged bool
}

// Spawn enqueues a new task on the current worker's queue (LIFO, so DFS
// order is preserved locally; thieves steal from the opposite end).
func (c *Ctx[T, R]) Spawn(t T) {
	c.eng.pending.Add(1)
	q := &c.eng.queues[c.worker]
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

// Emit merges a partial result into the worker-local accumulator.
func (c *Ctx[T, R]) Emit(r R) {
	if !c.merged {
		c.local = r
		c.merged = true
		return
	}
	c.local = c.eng.merge(c.local, r)
}

// Tick consumes one unit of task budget. Apps call it once per elementary
// expansion step.
func (c *Ctx[T, R]) Tick() { c.ticks++ }

// ShouldSplit reports whether the task has exhausted its budget and should
// spawn its remaining branches as subtasks instead of recursing.
func (c *Ctx[T, R]) ShouldSplit() bool {
	return c.budget > 0 && c.ticks >= c.budget
}

// Splitted records that the app split a task (for Stats).
func (c *Ctx[T, R]) Splitted() { c.eng.splits.Add(1) }

// Worker returns the executing worker id.
func (c *Ctx[T, R]) Worker() int { return c.worker }

type workQueue[T any] struct {
	mu    sync.Mutex
	tasks []T
}

type engine[T, R any] struct {
	queues  []workQueue[T]
	pending atomic.Int64
	tasks   atomic.Int64
	steals  atomic.Int64
	splits  atomic.Int64
	ticks   atomic.Int64
	maxTask atomic.Int64
	merge   func(R, R) R
}

// Run executes the task tree rooted at roots: process is called for each
// task and may Spawn subtasks and Emit partial results, which are combined
// with merge (must be associative and commutative). It returns the merged
// result (zero if nothing was emitted) and engine stats.
func Run[T, R any](roots []T, process func(ctx *Ctx[T, R], t T), merge func(R, R) R, cfg Config) (R, Stats) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	eng := &engine[T, R]{
		queues: make([]workQueue[T], cfg.Workers),
		merge:  merge,
	}
	// distribute roots round-robin
	for i, t := range roots {
		eng.pending.Add(1)
		q := &eng.queues[i%cfg.Workers]
		q.tasks = append(q.tasks, t)
	}
	results := make([]R, cfg.Workers)
	hasResult := make([]bool, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		//lint:allow nakedgo task-engine worker pool with work stealing, joined via WaitGroup; stealing needs long-lived per-worker deques cluster.Run does not model
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			ctx := &Ctx[T, R]{eng: eng, worker: w, budget: cfg.Budget}
			for {
				t, ok := eng.pop(w)
				if !ok {
					t, ok = eng.steal(w, rng)
				}
				if !ok {
					if eng.pending.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				ctx.ticks = 0
				eng.tasks.Add(1)
				process(ctx, t)
				eng.ticks.Add(ctx.ticks)
				for {
					cur := eng.maxTask.Load()
					if ctx.ticks <= cur || eng.maxTask.CompareAndSwap(cur, ctx.ticks) {
						break
					}
				}
				eng.pending.Add(-1)
			}
			if ctx.merged {
				results[w] = ctx.local
				hasResult[w] = true
			}
		}(w)
	}
	wg.Wait()
	var out R
	first := true
	for w := range results {
		if !hasResult[w] {
			continue
		}
		if first {
			out = results[w]
			first = false
		} else {
			out = merge(out, results[w])
		}
	}
	return out, Stats{
		Tasks:        eng.tasks.Load(),
		Steals:       eng.steals.Load(),
		Splits:       eng.splits.Load(),
		Ticks:        eng.ticks.Load(),
		MaxTaskTicks: eng.maxTask.Load(),
	}
}

// pop takes from the tail of w's own queue (LIFO / DFS order).
func (e *engine[T, R]) pop(w int) (T, bool) {
	q := &e.queues[w]
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.tasks) == 0 {
		return zero, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t, true
}

// steal takes from the head of a random victim's queue (FIFO end: the
// biggest, shallowest tasks — the classic work-stealing heuristic that also
// implements G-thinker's "split heavy tasks" policy at the queue level).
func (e *engine[T, R]) steal(thief int, rng *rand.Rand) (T, bool) {
	var zero T
	n := len(e.queues)
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == thief {
			continue
		}
		q := &e.queues[v]
		q.mu.Lock()
		if len(q.tasks) > 0 {
			t := q.tasks[0]
			q.tasks = q.tasks[1:]
			q.mu.Unlock()
			e.steals.Add(1)
			return t, true
		}
		q.mu.Unlock()
	}
	return zero, false
}
