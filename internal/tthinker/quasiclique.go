package tthinker

import (
	"sort"

	"graphsys/internal/graph"
)

// A γ-quasi-clique is a vertex set S whose induced subgraph has minimum
// degree ≥ ⌈γ·(|S|-1)⌉. Quasi-clique mining is the flagship G-thinker
// application (Guo et al., PVLDB'20: "Scalable Mining of Maximal
// Quasi-Cliques"); unlike cliques the property is not hereditary, so search
// cannot prune by the property alone and relies on candidate-degree bounds.
//
// Maximality here means single-vertex maximality: no vertex can be added to S
// keeping the property (the practical output definition of Quick-style
// miners).

type qcRes struct{ sets [][]graph.V }

// QuasiCliqueTask extends set S (sorted) with candidates drawn from Cand.
type QuasiCliqueTask struct {
	S    []graph.V
	Cand []graph.V
}

// IsQuasiClique reports whether set S (no duplicates) satisfies the γ
// minimum-degree condition in g.
func IsQuasiClique(g *graph.Graph, s []graph.V, gamma float64) bool {
	if len(s) <= 1 {
		return len(s) == 1
	}
	need := ceilGamma(gamma, len(s)-1)
	for _, v := range s {
		if countIn(g, v, s) < need {
			return false
		}
	}
	return true
}

func ceilGamma(gamma float64, x int) int {
	v := gamma * float64(x)
	n := int(v)
	if float64(n) < v {
		n++
	}
	return n
}

// QuasiCliques mines maximal γ-quasi-cliques with at least minSize vertices
// using task-parallel set extension. Candidates are restricted to vertices
// with id greater than the last added vertex, so each set is generated once.
// Returned sets are sorted ascending.
func QuasiCliques(g *graph.Graph, gamma float64, minSize int, cfg Config) ([][]graph.V, Stats) {
	n := g.NumVertices()
	merge := func(a, b qcRes) qcRes { return qcRes{sets: append(a.sets, b.sets...)} }

	process := func(ctx *Ctx[QuasiCliqueTask, qcRes], t QuasiCliqueTask) {
		quasiExtend(g, ctx, gamma, minSize, t)
	}
	roots := make([]QuasiCliqueTask, 0, n)
	for v := 0; v < n; v++ {
		var cand []graph.V
		for w := v + 1; w < n; w++ {
			cand = append(cand, graph.V(w))
		}
		roots = append(roots, QuasiCliqueTask{S: []graph.V{graph.V(v)}, Cand: cand})
	}
	out, stats := Run(roots, process, merge, cfg)
	sort.Slice(out.sets, func(i, j int) bool { return lessVSlice(out.sets[i], out.sets[j]) })
	return out.sets, stats
}

func quasiExtend(g *graph.Graph, ctx *Ctx[QuasiCliqueTask, qcRes], gamma float64, minSize int, t QuasiCliqueTask) {
	ctx.Tick()
	if len(t.S) >= minSize && IsQuasiClique(g, t.S, gamma) && isMaximalQuasi(g, t.S, gamma) {
		ctx.Emit(qcRes{sets: [][]graph.V{append([]graph.V(nil), t.S...)}})
	}
	for i, v := range t.Cand {
		// NOTE: no connectivity prune here — under increasing-id enumeration
		// the intermediate set may be temporarily disconnected even when the
		// final quasi-clique is connected (quasi-cliques are not hereditary).
		ns := append(append([]graph.V(nil), t.S...), v)
		nc := t.Cand[i+1:]
		// degree upper-bound prune: a vertex whose degree in S∪Cand is below
		// ⌈γ·(minSize-1)⌉ can never satisfy the final requirement
		if countIn(g, v, ns)+countIn(g, v, nc) < ceilGamma(gamma, minSize-1) {
			continue
		}
		sub := QuasiCliqueTask{S: ns, Cand: append([]graph.V(nil), nc...)}
		if ctx.ShouldSplit() {
			ctx.Splitted()
			ctx.Spawn(sub)
		} else {
			quasiExtend(g, ctx, gamma, minSize, sub)
		}
	}
}

// isMaximalQuasi reports whether no single vertex of g can be added to S
// keeping the γ-quasi-clique property.
func isMaximalQuasi(g *graph.Graph, s []graph.V, gamma float64) bool {
	in := make(map[graph.V]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	// only vertices adjacent to S can help (connected extension)
	tried := map[graph.V]bool{}
	for _, v := range s {
		for _, w := range g.Neighbors(v) {
			if in[w] || tried[w] {
				continue
			}
			tried[w] = true
			ext := append(append([]graph.V(nil), s...), w)
			if IsQuasiClique(g, ext, gamma) {
				return false
			}
		}
	}
	return true
}

func lessVSlice(a, b []graph.V) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
