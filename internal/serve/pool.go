package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the task-parallel execution substrate behind the G-thinkerQ-shaped
// engines: each admitted query owns a queue of fine-grained tasks, a shared
// worker pool draws tasks across queries under the configured Policy, and
// tasks may spawn children (TaskContext.Spawn) so heavy queries decompose
// and interleave with light ones.
//
// T is the task payload, A the query's answer type. Task results are folded
// into the query's accumulator with merge, which must be commutative and
// associative (task completion order is scheduling-dependent); it runs under
// the pool lock, so executors should aggregate locally and return one
// partial per task.
type Pool[T, A any] struct {
	opts  Options
	clock Clock
	exec  func(tc *TaskContext[T], task T) A
	merge func(a, b A) A

	ctr    counters
	nextID atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[int64]*pjob[T, A]
	order   []int64 // live job ids in admission order
	rr      int     // round-robin cursor into order
	closing bool    // Submit rejects with ErrClosed
	closed  bool    // workers exit once jobs drain
	wg      sync.WaitGroup
}

// pjob is one admitted query's scheduling state. All fields are guarded by
// Pool.mu except the ticket's own atomics.
type pjob[T, A any] struct {
	id      int64
	ticket  *Ticket[A]
	tasks   []T   // LIFO stack of runnable tasks
	pending int   // tasks not yet fully completed (queued + executing)
	acc     A     // merged partial answer
	served  int64 // task draws so far (WeightedFair bookkeeping)
	cost    int64 // caller's service-demand estimate (0 = unknown)
	weight  int
	term    error // ErrCanceled/ErrDeadlineExceeded once noticed; nil while live
}

// remaining is the ShortestRemaining key: the caller's estimate net of
// service received when one was given, the outstanding task count otherwise.
func (j *pjob[T, A]) remaining() int64 {
	if j.cost > 0 {
		if r := j.cost - j.served; r > 0 {
			return r
		}
		return 1 // estimate exhausted but work outstanding: nearly done
	}
	return int64(j.pending)
}

// JobSpec describes one query submitted to a Pool: its root tasks, the
// answer accumulator's initial value, and the serving metadata (deadline,
// weight, cost estimate) the scheduler acts on.
type JobSpec[T, A any] struct {
	// Roots are the query's initial tasks; the pool takes ownership of the
	// slice. An empty Roots completes immediately with Initial.
	Roots []T
	// Initial seeds the query's answer accumulator.
	Initial A
	// Deadline, Weight, Cost: see Request.
	Deadline time.Duration
	Weight   int
	Cost     int64
}

// NewPool starts a pool with opts.Workers workers. exec runs one task and
// returns its partial answer (spawning children via tc); merge folds
// partials into the query accumulator. Returns ErrInvalidRequest for a nil
// exec/merge or an unknown policy.
func NewPool[T, A any](opts Options, exec func(tc *TaskContext[T], task T) A, merge func(a, b A) A) (*Pool[T, A], error) {
	if exec == nil || merge == nil {
		return nil, ErrInvalidRequest
	}
	if !opts.Policy.valid() {
		return nil, ErrInvalidRequest
	}
	p := &Pool[T, A]{
		opts:  opts,
		clock: opts.clock(),
		exec:  exec,
		merge: merge,
		jobs:  map[int64]*pjob[T, A]{},
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < opts.workers(); w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// TaskContext is the executor's view of one task: spawn children, observe
// abort (cancel or deadline expiry) to short-circuit expensive loops.
type TaskContext[T any] struct {
	aborted func() bool
	spawned []T
}

// Spawn queues child tasks for the same query.
func (tc *TaskContext[T]) Spawn(tasks ...T) { tc.spawned = append(tc.spawned, tasks...) }

// Aborted reports whether the query was canceled or its deadline passed;
// executors should return early (their partial result is still merged).
func (tc *TaskContext[T]) Aborted() bool { return tc.aborted() }

// Submit admits one query. It returns ErrClosed after Close has begun and
// ErrQueueFull when Options.QueueLimit queries are already in flight (the
// rejection is metered). Empty-root queries complete immediately.
func (p *Pool[T, A]) Submit(spec JobSpec[T, A]) (*Ticket[A], error) {
	p.ctr.submitted.Add(1)
	now := p.clock()
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.opts.QueueLimit > 0 && len(p.jobs) >= p.opts.QueueLimit {
		p.ctr.rejected.Add(1)
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	id := p.nextID.Add(1)
	tk := newTicket[A](id, now, p.opts.deadlineFor(spec.Deadline), weightFor(spec.Weight))
	p.ctr.admitted.Add(1)
	if len(spec.Roots) == 0 {
		p.ctr.completed.Add(1)
		tk.complete(spec.Initial, nil, now)
		p.mu.Unlock()
		return tk, nil
	}
	j := &pjob[T, A]{
		id: id, ticket: tk, tasks: spec.Roots, pending: len(spec.Roots),
		acc: spec.Initial, cost: spec.Cost, weight: weightFor(spec.Weight),
	}
	p.jobs[id] = j
	p.order = append(p.order, id)
	p.cond.Broadcast()
	p.mu.Unlock()
	return tk, nil
}

// Drain blocks until every admitted query has reached a terminal state.
func (p *Pool[T, A]) Drain() {
	p.mu.Lock()
	for len(p.jobs) > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close drains the pool, then stops the workers. Submit during or after
// Close returns ErrClosed. Safe to call more than once.
func (p *Pool[T, A]) Close() error {
	p.mu.Lock()
	p.closing = true
	for len(p.jobs) > 0 {
		p.cond.Wait()
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// Metrics returns a snapshot of the admission and completion counters.
func (p *Pool[T, A]) Metrics() Metrics { return p.ctr.snapshot() }

func (p *Pool[T, A]) worker() {
	defer p.wg.Done()
	for {
		j, task, ok := p.take()
		if !ok {
			return
		}
		tc := &TaskContext[T]{aborted: func() bool {
			return j.ticket.Canceled() || j.ticket.expiredAt(p.clock())
		}}
		partial := p.exec(tc, task)
		p.finishTask(j, partial, tc.spawned)
	}
}

// take draws the next task under the policy, reaping canceled/expired
// queries on the way. Scheduling points (draws and task completions) are
// where cancellation and expiry are observed.
func (p *Pool[T, A]) take() (*pjob[T, A], T, bool) {
	var zero T
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		p.reapLocked()
		if j := p.pickLocked(); j != nil {
			n := len(j.tasks) - 1
			task := j.tasks[n]
			j.tasks[n] = zero // release the reference for GC
			j.tasks = j.tasks[:n]
			j.served++
			return j, task, true
		}
		if p.closed && len(p.jobs) == 0 {
			return nil, zero, false
		}
		p.cond.Wait()
	}
}

// reapLocked terminates queries that were canceled or whose deadline passed:
// queued tasks are dropped; in-flight tasks finish and merge their partials.
func (p *Pool[T, A]) reapLocked() {
	now := p.clock()
	var done []*pjob[T, A] // finished after the scan: finishing mutates p.order
	for _, id := range p.order {
		j := p.jobs[id]
		if j.term == nil {
			if j.ticket.Canceled() {
				j.term = ErrCanceled
			} else if j.ticket.expiredAt(now) {
				j.term = ErrDeadlineExceeded
			}
		}
		if j.term != nil && len(j.tasks) > 0 {
			j.pending -= len(j.tasks)
			j.tasks = nil
		}
		if j.term != nil && j.pending == 0 {
			//lint:allow hotalloc termination path: grows only when a query was canceled or blew its deadline, not per task draw
			done = append(done, j)
		}
	}
	for _, j := range done {
		p.finishJobLocked(j)
	}
}

// runnable resolves a job id to the job when it still has queued tasks,
// else nil. A method, not a closure in pickLocked: pickLocked runs per task
// draw and must not allocate.
func (p *Pool[T, A]) runnable(id int64) *pjob[T, A] {
	if j := p.jobs[id]; j != nil && len(j.tasks) > 0 {
		return j
	}
	return nil
}

// pickLocked selects the next query to draw a task from, or nil when no
// query has a runnable task. Ties break toward earlier admission, so every
// policy is deterministic given the same scheduling state.
func (p *Pool[T, A]) pickLocked() *pjob[T, A] {
	switch p.opts.Policy {
	case RoundRobin:
		if len(p.order) == 0 {
			return nil
		}
		for i := 0; i < len(p.order); i++ {
			idx := (p.rr + i) % len(p.order)
			if j := p.runnable(p.order[idx]); j != nil {
				p.rr = (idx + 1) % len(p.order)
				return j
			}
		}
		return nil
	case FIFO:
		for _, id := range p.order {
			if j := p.runnable(id); j != nil {
				return j
			}
		}
		return nil
	case ShortestRemaining:
		var best *pjob[T, A]
		for _, id := range p.order {
			j := p.runnable(id)
			if j == nil {
				continue
			}
			if best == nil || j.remaining() < best.remaining() {
				best = j
			}
		}
		return best
	case WeightedFair:
		var best *pjob[T, A]
		for _, id := range p.order {
			j := p.runnable(id)
			if j == nil {
				continue
			}
			if best == nil || fairBefore(j.served, j.weight, best.served, best.weight) {
				best = j
			}
		}
		return best
	default:
		return nil // NewPool validated the policy; unreachable
	}
}

// finishTask merges one completed task's partial answer, enqueues its
// children, and completes the query when its last task retires.
func (p *Pool[T, A]) finishTask(j *pjob[T, A], partial A, children []T) {
	p.mu.Lock()
	j.acc = p.merge(j.acc, partial)
	j.pending--
	if j.term == nil {
		if j.ticket.Canceled() {
			j.term = ErrCanceled
		} else if j.ticket.expiredAt(p.clock()) {
			j.term = ErrDeadlineExceeded
		}
	}
	if j.term == nil && len(children) > 0 {
		j.tasks = append(j.tasks, children...)
		j.pending += len(children)
		p.cond.Broadcast()
	}
	if j.pending == 0 && len(j.tasks) == 0 {
		p.finishJobLocked(j)
	}
	p.mu.Unlock()
}

// finishJobLocked publishes the query's terminal state and retires it from
// the scheduler.
func (p *Pool[T, A]) finishJobLocked(j *pjob[T, A]) {
	if _, live := p.jobs[j.id]; !live {
		return
	}
	delete(p.jobs, j.id)
	for i, id := range p.order {
		if id == j.id {
			//lint:allow hotalloc in-place removal: appending a shorter tail into the same backing array can never grow it
			p.order = append(p.order[:i], p.order[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			break
		}
	}
	if len(p.order) == 0 {
		p.rr = 0
	} else {
		p.rr %= len(p.order)
	}
	switch j.term {
	case nil:
		p.ctr.completed.Add(1)
	case ErrCanceled:
		p.ctr.canceled.Add(1)
	case ErrDeadlineExceeded:
		p.ctr.expired.Add(1)
	}
	j.ticket.complete(j.acc, j.term, p.clock())
	p.cond.Broadcast()
}
