package serve

import (
	"sync"
	"time"
)

// Clock is the injectable time source every serving engine stamps latencies
// and checks deadlines with — the generalisation of the old
// gthinkerq.Server.SetClock hook. Engines never read the host clock
// directly: the clock arrives through Options, so tests and the load
// generator substitute a LogicalClock and the whole serving tier becomes
// wall-clock-free (graphlint's wallclock check covers this package).
type Clock func() time.Time

// WallClock returns the host clock — the default for interactive serving,
// where latency is an observation about the host, never engine state.
func WallClock() Clock {
	//lint:allow wallclock interactive serving latency is host observability, not engine state; deterministic paths inject a LogicalClock instead
	return time.Now
}

// LogicalClock is a manually advanced deterministic clock. Its zero value
// starts at the zero time; Advance moves it forward. Safe for concurrent
// use.
type LogicalClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewLogicalClock returns a logical clock starting at start.
func NewLogicalClock(start time.Time) *LogicalClock {
	return &LogicalClock{now: start}
}

// Now returns the current logical time.
func (c *LogicalClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored: logical time
// never runs backwards).
func (c *LogicalClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Clock adapts the logical clock to the Clock injection point.
func (c *LogicalClock) Clock() Clock { return c.Now }
