// Package serve is the unified serving tier over the online query engines
// (G-thinkerQ's shared task pool, Quegel's superstep-shared batches): one
// Engine interface — submit with a per-query deadline, cancel, drain, close —
// behind which both engines run, with pluggable scheduling policies and
// admission control in front of them.
//
// The survey's online-analytics column (Quegel §7, G-thinkerQ) describes
// systems whose unit of work is a latency-bound interactive query against a
// loaded big graph, not a batch job; this package is where that serving
// contract lives, mirroring how cluster.RunOptions centralises the batch
// runtime's cross-cutting configuration:
//
//	eng := gthinkerq.NewEngine(g, serve.Options{
//	    Workers:    8,
//	    Policy:     serve.ShortestRemaining,
//	    QueueLimit: 256,                    // load-shed beyond 256 in-flight queries
//	    Deadline:   200 * time.Millisecond, // default per-query SLO
//	})
//	t, err := eng.Submit(serve.Request[*graph.Graph]{Query: pattern})
//
// Exported entry points return typed errors (ErrQueueFull, ErrClosed,
// ErrDeadlineExceeded, ErrCanceled) — never panic, never drop a query
// silently; every rejection is metered in Metrics.
//
// Two execution substrates implement the scheduling behind Engine: Pool (a
// shared worker pool drawing tasks from per-query queues — the G-thinkerQ
// shape) and Batcher (a serving loop answering admitted queries in shared
// batches — the Quegel shape). The package also carries the measurement
// half of the serving tier: an open-loop load generator (loadgen.go) and a
// deterministic discrete-event simulator (sim.go) that turn the policies
// into the p50/p99-vs-offered-load curves of BENCH_serving.json.
package serve

import (
	"errors"
	"sync/atomic"
	"time"
)

// Typed serving errors. Submit and Ticket.Wait return exactly these (wrapped
// with context where useful), so callers can errors.Is on the condition
// instead of string-matching.
var (
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("serve: engine closed")
	// ErrQueueFull is returned by Submit when admission control sheds the
	// query: the engine already holds Options.QueueLimit in-flight queries.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDeadlineExceeded is returned by Wait when the query's deadline
	// expired before it completed; the partial result is still returned.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")
	// ErrCanceled is returned by Wait when the query was canceled; the
	// partial result is still returned.
	ErrCanceled = errors.New("serve: query canceled")
	// ErrInvalidRequest is returned by Submit for malformed requests
	// (e.g. a nil query payload).
	ErrInvalidRequest = errors.New("serve: invalid request")
)

// Request is one query submission. Q is the engine's query payload type
// (a pattern graph for gthinkerq, a src/dst pair for quegel).
type Request[Q any] struct {
	// Query is the engine-specific payload.
	Query Q
	// Deadline, if > 0, bounds the query's total latency (queueing +
	// service): past it the engine stops working on the query and Wait
	// returns ErrDeadlineExceeded. 0 falls back to Options.Deadline.
	Deadline time.Duration
	// Weight biases the WeightedFair policy; values < 1 are treated as 1.
	Weight int
	// Cost is the caller's estimate of the query's service demand in
	// engine work units (0 = unknown). The ShortestRemaining policy in the
	// Batcher and the simulator order by it; the Pool refines it online
	// from outstanding task counts.
	Cost int64
}

// Engine is the serving-tier contract both online engines implement.
//
// Submit never blocks on query execution: it either admits the request and
// returns a Ticket, or rejects it with a typed error (ErrQueueFull under
// load shedding, ErrClosed after shutdown, ErrInvalidRequest). Drain blocks
// until every admitted query has completed. Close drains, then releases the
// engine's resources; Submit after Close returns ErrClosed.
type Engine[Q, A any] interface {
	Submit(req Request[Q]) (*Ticket[A], error)
	Drain()
	Close() error
	Metrics() Metrics
}

// Metrics are the admission-control and completion counters every Engine
// meters; rejections are counted, never silent.
type Metrics struct {
	Submitted int64 // Submit calls that were not ErrInvalidRequest
	Admitted  int64 // accepted into the engine
	Rejected  int64 // shed with ErrQueueFull
	Completed int64 // finished with a full result
	Canceled  int64 // finished early via Ticket.Cancel
	Expired   int64 // finished early via deadline expiry
	Failed    int64 // finished with an engine execution error
}

// counters is the internal atomic mirror of Metrics, shared by Pool and
// Batcher.
type counters struct {
	submitted, admitted, rejected        atomic.Int64
	completed, canceled, expired, failed atomic.Int64
}

func (c *counters) snapshot() Metrics {
	return Metrics{
		Submitted: c.submitted.Load(),
		Admitted:  c.admitted.Load(),
		Rejected:  c.rejected.Load(),
		Completed: c.completed.Load(),
		Canceled:  c.canceled.Load(),
		Expired:   c.expired.Load(),
		Failed:    c.failed.Load(),
	}
}

// Options is the cross-cutting serving configuration shared by every engine
// behind the serve.Engine interface — the serving-tier analogue of
// cluster.RunOptions.
type Options struct {
	// Workers sizes the engine's service concurrency: worker goroutines
	// for the Pool, the engine's cluster width for batch engines.
	// 0 defaults to 4.
	Workers int
	// Policy selects the scheduling discipline across in-flight queries
	// (default RoundRobin — the G-thinkerQ baseline).
	Policy Policy
	// QueueLimit bounds the number of concurrently admitted (in-flight)
	// queries; Submit sheds beyond it with ErrQueueFull. 0 = unbounded.
	QueueLimit int
	// Batch bounds how many queries a batch engine folds into one shared
	// run (0 = all currently queued). Ignored by the Pool.
	Batch int
	// Deadline is the default per-query latency bound applied when
	// Request.Deadline is 0 (0 = none).
	Deadline time.Duration
	// Clock stamps submission/completion for Ticket.Latency and drives
	// deadline expiry. nil defaults to WallClock(); tests and the load
	// generator inject a LogicalClock to keep latency math deterministic.
	Clock Clock
}

// workers resolves the worker-count default.
func (o Options) workers() int {
	if o.Workers <= 0 {
		return 4
	}
	return o.Workers
}

// clock resolves the clock default.
func (o Options) clock() Clock {
	if o.Clock == nil {
		return WallClock()
	}
	return o.Clock
}

// deadlineFor resolves a request's effective deadline.
func (o Options) deadlineFor(req time.Duration) time.Duration {
	if req > 0 {
		return req
	}
	return o.Deadline
}

// weightFor clamps a request weight.
func weightFor(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// Ticket is the handle to one admitted query. The zero Ticket is not valid;
// engines mint tickets on Submit.
type Ticket[A any] struct {
	id        int64
	submitted time.Time
	deadline  time.Time // zero = none
	weight    int

	canceled atomic.Bool
	done     chan struct{}
	// result/err/finished are written exactly once before done is closed;
	// the channel close is the publication barrier.
	result   A
	err      error
	finished time.Time
}

func newTicket[A any](id int64, now time.Time, deadline time.Duration, weight int) *Ticket[A] {
	t := &Ticket[A]{id: id, submitted: now, weight: weight, done: make(chan struct{})}
	if deadline > 0 {
		t.deadline = now.Add(deadline)
	}
	return t
}

// CompletedTicket mints an already-terminal ticket carrying result and err —
// for wrappers that must surface a rejection through an API with no error
// return, and for tests. Its latency is zero and it has no engine id.
func CompletedTicket[A any](result A, err error) *Ticket[A] {
	t := &Ticket[A]{done: make(chan struct{})}
	t.complete(result, err, time.Time{})
	return t
}

// ID returns the engine-assigned query id (unique per engine, ascending in
// admission order).
func (t *Ticket[A]) ID() int64 { return t.id }

// Cancel requests cancellation: the engine stops working on the query as
// soon as it notices, and Wait returns the partial result with ErrCanceled.
// Canceling a completed query is a no-op. Safe to call concurrently.
func (t *Ticket[A]) Cancel() { t.canceled.Store(true) }

// Canceled reports whether Cancel was called.
func (t *Ticket[A]) Canceled() bool { return t.canceled.Load() }

// Done returns a channel closed when the query reaches a terminal state
// (completed, canceled, or expired).
func (t *Ticket[A]) Done() <-chan struct{} { return t.done }

// Wait blocks until the query reaches a terminal state and returns the
// result. The error is nil on completion, ErrCanceled or
// ErrDeadlineExceeded on early termination (the result then holds whatever
// partial answer the engine accumulated), or the engine's execution error.
func (t *Ticket[A]) Wait() (A, error) {
	<-t.done
	return t.result, t.err
}

// Err returns the terminal error without blocking; nil while in flight or
// after successful completion.
func (t *Ticket[A]) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return nil
	}
}

// Latency returns the submit-to-completion latency; valid after the ticket
// is done (it returns 0 while in flight).
func (t *Ticket[A]) Latency() time.Duration {
	select {
	case <-t.done:
		return t.finished.Sub(t.submitted)
	default:
		return 0
	}
}

// expired reports whether the ticket's deadline has passed at time now.
func (t *Ticket[A]) expiredAt(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// complete publishes the terminal state. Must be called exactly once.
func (t *Ticket[A]) complete(result A, err error, now time.Time) {
	t.result = result
	t.err = err
	t.finished = now
	close(t.done)
}
