package serve

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSimulateFIFOHandComputed(t *testing.T) {
	// two workers (2 units/tick); jobs: cost 4 at t=0, cost 2 at t=0.
	// FIFO pours both units into job 0 for two ticks (done end of tick 1,
	// finish=2), then job 1 (done end of tick 2... wait: tick 0 gives 2 to
	// job0; tick 1 gives remaining 2 to job0 → finish 2; ticks 2 serves job1
	// → finish 3).
	arr := []Arrival{{At: 0, Cost: 4}, {At: 0, Cost: 2}}
	res, err := Simulate(SimConfig{Workers: 2, Policy: FIFO, Arrivals: arr})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Outcomes[0].Finish != 2 || res.Outcomes[1].Finish != 3 {
		t.Fatalf("FIFO finishes: %+v", res.Outcomes)
	}
}

func TestSimulateSRPTFavorsShortJob(t *testing.T) {
	// one worker; long job arrives first, short job second tick.
	arr := []Arrival{{At: 0, Cost: 10}, {At: 1, Cost: 1}}
	fifo, err := Simulate(SimConfig{Workers: 1, Policy: FIFO, Arrivals: arr})
	if err != nil {
		t.Fatalf("fifo: %v", err)
	}
	srpt, err := Simulate(SimConfig{Workers: 1, Policy: ShortestRemaining, Arrivals: arr})
	if err != nil {
		t.Fatalf("srpt: %v", err)
	}
	// under FIFO the short job waits behind the long one; under SRPT it
	// preempts and finishes at tick 2 (latency 1)
	if srpt.Outcomes[1].Latency != 1 {
		t.Fatalf("srpt short-job latency %d, want 1", srpt.Outcomes[1].Latency)
	}
	if fifo.Outcomes[1].Latency <= srpt.Outcomes[1].Latency {
		t.Fatalf("fifo should delay the short job: fifo=%d srpt=%d",
			fifo.Outcomes[1].Latency, srpt.Outcomes[1].Latency)
	}
	// work conservation: total completion mass is policy-independent
	if fifo.Completed != 2 || srpt.Completed != 2 {
		t.Fatalf("completions: fifo=%d srpt=%d", fifo.Completed, srpt.Completed)
	}
}

func TestSimulateRoundRobinShares(t *testing.T) {
	// one worker, two equal jobs: round-robin alternates units, both finish
	// within one tick of each other at the end
	arr := []Arrival{{At: 0, Cost: 3}, {At: 0, Cost: 3}}
	res, err := Simulate(SimConfig{Workers: 1, Policy: RoundRobin, Arrivals: arr})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	d := res.Outcomes[0].Finish - res.Outcomes[1].Finish
	if d < -1 || d > 1 {
		t.Fatalf("round-robin finishes should interleave: %+v", res.Outcomes)
	}
}

func TestSimulateWeightedFairBias(t *testing.T) {
	// equal costs, weight 3 vs 1: the heavy-weight job must finish first
	arr := []Arrival{{At: 0, Cost: 12, Weight: 1}, {At: 0, Cost: 12, Weight: 3}}
	res, err := Simulate(SimConfig{Workers: 1, Policy: WeightedFair, Arrivals: arr})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Outcomes[1].Finish >= res.Outcomes[0].Finish {
		t.Fatalf("weighted job should finish first: %+v", res.Outcomes)
	}
}

func TestSimulateShedsAndExpires(t *testing.T) {
	cfg := SimConfig{
		Workers:    1,
		Policy:     FIFO,
		QueueLimit: 1,
		Deadline:   2,
		Arrivals: []Arrival{
			{At: 0, Cost: 10}, // admitted, expires at t=2
			{At: 0, Cost: 1},  // shed: queue already holds one
			{At: 5, Cost: 1},  // admitted after the first expires, completes
		},
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Outcomes[0].Status != StatusExpired || res.Outcomes[1].Status != StatusRejected ||
		res.Outcomes[2].Status != StatusCompleted {
		t.Fatalf("statuses: %+v", res.Outcomes)
	}
	if res.Completed != 1 || res.Rejected != 1 || res.Expired != 1 {
		t.Fatalf("counts: %+v", res)
	}
	if res.Outcomes[1].Latency != -1 || res.Outcomes[1].Finish != -1 {
		t.Fatalf("rejected outcome carries service fields: %+v", res.Outcomes[1])
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := []SimConfig{
		{Workers: 0, Policy: FIFO},
		{Workers: 1, Policy: Policy(42)},
		{Workers: 1, Policy: FIFO, Arrivals: []Arrival{{At: 0, Cost: 0}}},
		{Workers: 1, Policy: FIFO, Arrivals: []Arrival{{At: 5, Cost: 1}, {At: 3, Cost: 1}}},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("config %d: %v, want ErrInvalidRequest", i, err)
		}
	}
	// MaxTicks cap is a typed failure, not a hang
	if _, err := Simulate(SimConfig{Workers: 1, Policy: FIFO, MaxTicks: 3,
		Arrivals: []Arrival{{At: 0, Cost: 100}}}); err == nil {
		t.Fatal("expected MaxTicks error")
	}
}

// TestSeededArrivalDeterminism is the serving tier's determinism gate: the
// same seed must produce a byte-identical outcome trace and the same
// per-query outcome sequence, for every policy.
func TestSeededArrivalDeterminism(t *testing.T) {
	sizes := Bimodal{Light: Uniform{Min: 1, Max: 4}, Heavy: Uniform{Min: 40, Max: 80}, PHeavy: 0.1}
	gen := func() []Arrival {
		arr, err := PoissonArrivals(rand.New(rand.NewSource(42)), 400, 0.5, sizes)
		if err != nil {
			t.Fatalf("arrivals: %v", err)
		}
		return arr
	}
	a1, a2 := gen(), gen()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs across identical seeds: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	for _, pol := range Policies {
		cfg := SimConfig{Workers: 2, Policy: pol, QueueLimit: 64, Deadline: 400}
		cfg.Arrivals = a1
		r1, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%v run 1: %v", pol, err)
		}
		cfg.Arrivals = a2
		r2, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%v run 2: %v", pol, err)
		}
		if r1.Trace() != r2.Trace() {
			t.Fatalf("%v: traces diverge for the same seed", pol)
		}
		if r1.TraceHash() != r2.TraceHash() {
			t.Fatalf("%v: trace hashes diverge", pol)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lat := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(lat, 50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := Percentile(lat, 99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
	if got := Percentile(lat, 100); got != 10 {
		t.Fatalf("p100 = %d, want 10", got)
	}
	if got := Percentile(nil, 50); got != -1 {
		t.Fatalf("empty p50 = %d, want -1", got)
	}
}

func TestLoadgenValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PoissonArrivals(nil, 10, 1, Uniform{Min: 1, Max: 2}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("nil rng: %v", err)
	}
	if _, err := PoissonArrivals(rng, 0, 1, Uniform{Min: 1, Max: 2}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := PoissonArrivals(rng, 10, 0, Uniform{Min: 1, Max: 2}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("lambda=0: %v", err)
	}
	arr, err := PoissonArrivals(rng, 100, 2, Uniform{Min: 3, Max: 3})
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	for i, a := range arr {
		if a.Cost != 3 || (i > 0 && a.At < arr[i-1].At) {
			t.Fatalf("arrival %d malformed: %+v", i, a)
		}
	}
	if _, err := TraceArrivals([]int64{0, 1}, []int64{1}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("length mismatch: %v", err)
	}
	if _, err := TraceArrivals([]int64{5, 3}, []int64{1, 1}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("decreasing ticks: %v", err)
	}
	if _, err := TraceArrivals([]int64{0}, []int64{0}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("zero cost: %v", err)
	}
	got, err := TraceArrivals([]int64{0, 2, 2}, []int64{1, 2, 3})
	if err != nil || len(got) != 3 || got[2].Cost != 3 {
		t.Fatalf("trace arrivals: %v %v", got, err)
	}
}
