package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// This file is the serving tier's measurement model: a deterministic
// discrete-event simulation of the Engine contract (admission control,
// deadlines, the four scheduling policies) over metered work, in the same
// spirit as the experiment tables — logical ticks are the only clock, so
// BENCH_serving.json is byte-identical run to run and machine to machine.
// One tick retires Workers work units, split across the in-flight queries
// by the policy exactly as the live Pool splits task draws.

// Status is an arrival's terminal state in a simulation.
type Status int

const (
	// StatusCompleted: the query received its full service demand.
	StatusCompleted Status = iota
	// StatusRejected: admission control shed the query on arrival
	// (queue full) — the open-loop generator does not retry.
	StatusRejected
	// StatusExpired: the deadline passed before service completed.
	StatusExpired
)

func (s Status) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusRejected:
		return "rejected"
	case StatusExpired:
		return "expired"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// SimConfig configures one simulated serving run.
type SimConfig struct {
	// Workers is the pool capacity: work units retired per tick (≥ 1).
	Workers int
	// Policy is the scheduling discipline across in-flight queries.
	Policy Policy
	// QueueLimit bounds concurrently admitted queries; arrivals beyond it
	// are shed (0 = unbounded).
	QueueLimit int
	// Deadline in ticks: a query still unfinished Deadline ticks after
	// arrival expires and its residual work is abandoned (0 = none).
	Deadline int64
	// Arrivals is the open-loop workload, sorted by At.
	Arrivals []Arrival
	// MaxTicks caps the simulation as a runaway guard
	// (0 = defaultMaxTicks).
	MaxTicks int64
}

const defaultMaxTicks = 50_000_000

// Outcome is one arrival's terminal record.
type Outcome struct {
	Index   int    // position in SimConfig.Arrivals
	At      int64  // arrival tick
	Cost    int64  // service demand
	Status  Status
	Finish  int64 // terminal tick (completion or expiry); -1 when rejected
	Latency int64 // Finish − At for completed queries; -1 otherwise
}

// SimResult is a simulated serving run's full record.
type SimResult struct {
	Policy   Policy
	Outcomes []Outcome // in arrival order
	Horizon  int64     // last terminal event's tick (≥ last arrival tick)

	Completed, Rejected, Expired int
}

// simJob is one in-flight query inside the event loop.
type simJob struct {
	idx       int
	at        int64
	remaining int64
	weight    int
	served    int64 // units received (WeightedFair bookkeeping)
}

// Simulate runs the discrete-event model and returns the per-arrival
// outcomes. It is a pure function of its config: identical configs produce
// identical results on any machine. Returns ErrInvalidRequest on malformed
// config (bad policy, unsorted arrivals, non-positive costs) and an error
// when MaxTicks is exceeded.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: Simulate needs Workers ≥ 1", ErrInvalidRequest)
	}
	if !cfg.Policy.valid() {
		return nil, fmt.Errorf("%w: unknown policy %v", ErrInvalidRequest, cfg.Policy)
	}
	for i, a := range cfg.Arrivals {
		if a.Cost < 1 {
			return nil, fmt.Errorf("%w: arrival %d has cost %d", ErrInvalidRequest, i, a.Cost)
		}
		if i > 0 && a.At < cfg.Arrivals[i-1].At {
			return nil, fmt.Errorf("%w: arrivals not sorted at index %d", ErrInvalidRequest, i)
		}
	}
	maxTicks := cfg.MaxTicks
	if maxTicks <= 0 {
		maxTicks = defaultMaxTicks
	}

	res := &SimResult{Policy: cfg.Policy, Outcomes: make([]Outcome, len(cfg.Arrivals))}
	for i, a := range cfg.Arrivals {
		res.Outcomes[i] = Outcome{Index: i, At: a.At, Cost: a.Cost, Finish: -1, Latency: -1}
	}

	var active []*simJob // admission order
	next := 0            // next arrival to admit
	rr := 0              // round-robin cursor into active
	var t int64
	for next < len(cfg.Arrivals) || len(active) > 0 {
		if t >= maxTicks {
			return nil, fmt.Errorf("serve: simulation exceeded %d ticks (offered load far beyond capacity with no shedding?)", maxTicks)
		}
		// fast-forward through idle time
		if len(active) == 0 && cfg.Arrivals[next].At > t {
			t = cfg.Arrivals[next].At
		}
		// admissions at tick t
		for next < len(cfg.Arrivals) && cfg.Arrivals[next].At == t {
			a := cfg.Arrivals[next]
			if cfg.QueueLimit > 0 && len(active) >= cfg.QueueLimit {
				res.Outcomes[next].Status = StatusRejected
				res.Rejected++
			} else {
				active = append(active, &simJob{idx: next, at: t, remaining: a.Cost, weight: weightFor(a.Weight)})
			}
			next++
		}
		// deadline expiry before this tick's service
		if cfg.Deadline > 0 {
			kept := active[:0]
			for i, j := range active {
				if t-j.at >= cfg.Deadline {
					o := &res.Outcomes[j.idx]
					o.Status = StatusExpired
					o.Finish = t
					res.Expired++
					if rr > i {
						rr--
					}
					continue
				}
				kept = append(kept, j)
			}
			for i := len(kept); i < len(active); i++ {
				active[i] = nil
			}
			active = kept
			if len(active) == 0 {
				rr = 0
			} else {
				rr %= len(active)
			}
		}
		// retire Workers units under the policy
		if len(active) > 0 {
			rr = allocate(cfg.Policy, active, int64(cfg.Workers), rr)
			// completions at end of tick t
			kept := active[:0]
			for i, j := range active {
				if j.remaining <= 0 {
					o := &res.Outcomes[j.idx]
					o.Status = StatusCompleted
					o.Finish = t + 1
					o.Latency = t + 1 - j.at
					res.Completed++
					if o.Finish > res.Horizon {
						res.Horizon = o.Finish
					}
					if rr > i {
						rr--
					}
					continue
				}
				kept = append(kept, j)
			}
			for i := len(kept); i < len(active); i++ {
				active[i] = nil
			}
			active = kept
			if len(active) == 0 {
				rr = 0
			} else {
				rr %= len(active)
			}
		}
		if t >= res.Horizon {
			res.Horizon = t
		}
		t++
	}
	return res, nil
}

// allocate hands out capacity units across the active queries for one tick
// and returns the updated round-robin cursor. Jobs can absorb multiple
// units per tick (several workers ganging up on one query's tasks), exactly
// like the live Pool.
func allocate(policy Policy, active []*simJob, units int64, rr int) int {
	switch policy {
	case FIFO:
		// admission order, run to completion: the whole pool pours into
		// the oldest query before touching the next
		for _, j := range active {
			if units == 0 {
				break
			}
			grant := j.remaining
			if grant > units {
				grant = units
			}
			j.remaining -= grant
			j.served += grant
			units -= grant
		}
	case RoundRobin:
		// unit-at-a-time rotation = egalitarian processor sharing at
		// integer granularity
		for units > 0 {
			granted := false
			for i := 0; i < len(active); i++ {
				idx := (rr + i) % len(active)
				j := active[idx]
				if j.remaining > 0 {
					j.remaining--
					j.served++
					units--
					granted = true
					rr = (idx + 1) % len(active)
					break
				}
			}
			if !granted {
				break // every active query already fully served this tick
			}
		}
	case ShortestRemaining:
		// preemptive SRPT with pooling: smallest remaining first, ties to
		// earlier admission
		for units > 0 {
			var best *simJob
			for _, j := range active {
				if j.remaining > 0 && (best == nil || j.remaining < best.remaining) {
					best = j
				}
			}
			if best == nil {
				break
			}
			grant := best.remaining
			if grant > units {
				grant = units
			}
			best.remaining -= grant
			best.served += grant
			units -= grant
		}
	case WeightedFair:
		// unit-at-a-time to the query most owed service per weight
		for units > 0 {
			var best *simJob
			for _, j := range active {
				if j.remaining > 0 && (best == nil || fairBefore(j.served, j.weight, best.served, best.weight)) {
					best = j
				}
			}
			if best == nil {
				break
			}
			best.remaining--
			best.served++
			units--
		}
	}
	return rr
}

// CompletedLatencies returns the completed queries' latencies sorted
// ascending — the percentile input.
func (r *SimResult) CompletedLatencies() []int64 {
	out := make([]int64, 0, r.Completed)
	for _, o := range r.Outcomes {
		if o.Status == StatusCompleted {
			out = append(out, o.Latency)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// Percentile returns the nearest-rank p-th percentile (p in (0,100]) of
// sorted ascending latencies; -1 for an empty slice.
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return -1
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Goodput returns completed queries per `per` ticks over the run's horizon
// (0 for an empty horizon).
func (r *SimResult) Goodput(per int64) float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(per) / float64(r.Horizon)
}

// Trace renders the byte-exact per-arrival outcome log — the artifact the
// seeded-determinism tests and the benchmark's determinism witness hash.
func (r *SimResult) Trace() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy=%s arrivals=%d\n", r.Policy, len(r.Outcomes))
	for _, o := range r.Outcomes {
		fmt.Fprintf(&sb, "i=%d at=%d cost=%d status=%s finish=%d latency=%d\n",
			o.Index, o.At, o.Cost, o.Status, o.Finish, o.Latency)
	}
	return sb.String()
}

// TraceHash returns the FNV-64a hash of Trace as hex — a compact
// determinism witness for reports.
func (r *SimResult) TraceHash() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(r.Trace()))
	return fmt.Sprintf("%016x", h.Sum64())
}
