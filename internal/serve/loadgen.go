package serve

import (
	"fmt"
	"math/rand"
)

// Arrival is one generated query arrival: the open-loop load generator's
// unit. Ticks are logical time (the serving tier's metered clock); Cost is
// the query's service demand in work units.
type Arrival struct {
	At     int64 // arrival tick, non-decreasing across a workload
	Cost   int64 // service demand in work units (≥ 1)
	Weight int   // WeightedFair share (≥ 1)
}

// Sizer draws query service demands from an injected seeded RNG — the
// repo's globalrand contract: constructors are pure data, every draw goes
// through the caller's *rand.Rand.
type Sizer interface {
	Draw(rng *rand.Rand) int64
}

// Uniform draws sizes uniformly from [Min, Max].
type Uniform struct {
	Min, Max int64
}

// Draw implements Sizer.
func (u Uniform) Draw(rng *rand.Rand) int64 {
	if u.Max <= u.Min {
		return max64(u.Min, 1)
	}
	return max64(u.Min+rng.Int63n(u.Max-u.Min+1), 1)
}

// Bimodal draws a mostly-light, occasionally-heavy size mix — the
// interactive serving shape (selective point queries sharing the engine
// with analytical sweeps) where scheduling policy choices actually bite.
type Bimodal struct {
	Light  Uniform
	Heavy  Uniform
	PHeavy float64 // probability of a heavy draw
}

// Draw implements Sizer.
func (b Bimodal) Draw(rng *rand.Rand) int64 {
	// draw the coin first so the light/heavy streams stay aligned across
	// configurations with the same seed
	coin := rng.Float64()
	if coin < b.PHeavy {
		return b.Heavy.Draw(rng)
	}
	return b.Light.Draw(rng)
}

// PoissonArrivals generates n open-loop arrivals with exponential
// interarrival times at rate lambda (expected arrivals per tick), sizes
// drawn from sizes, unit weights. The process is open-loop by construction:
// arrival times depend only on the RNG, never on service progress. Returns
// ErrInvalidRequest for a non-positive n, lambda, or a nil sizer.
func PoissonArrivals(rng *rand.Rand, n int, lambda float64, sizes Sizer) ([]Arrival, error) {
	if rng == nil || n <= 0 || lambda <= 0 || sizes == nil {
		return nil, fmt.Errorf("%w: PoissonArrivals needs rng, n>0, lambda>0 and a sizer", ErrInvalidRequest)
	}
	out := make([]Arrival, n)
	var t float64
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / lambda
		out[i] = Arrival{At: int64(t), Cost: sizes.Draw(rng), Weight: 1}
	}
	return out, nil
}

// TraceArrivals builds a trace-driven workload from explicit (tick, cost)
// pairs — replaying a recorded arrival log instead of a synthetic process.
// Ticks must be non-decreasing and costs positive.
func TraceArrivals(at, cost []int64) ([]Arrival, error) {
	if len(at) != len(cost) {
		return nil, fmt.Errorf("%w: trace has %d ticks but %d costs", ErrInvalidRequest, len(at), len(cost))
	}
	out := make([]Arrival, len(at))
	for i := range at {
		if i > 0 && at[i] < at[i-1] {
			return nil, fmt.Errorf("%w: trace ticks decrease at index %d", ErrInvalidRequest, i)
		}
		if cost[i] < 1 {
			return nil, fmt.Errorf("%w: trace cost %d at index %d", ErrInvalidRequest, cost[i], i)
		}
		out[i] = Arrival{At: at[i], Cost: cost[i], Weight: 1}
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
