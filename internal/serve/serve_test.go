package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sumPool builds a Pool whose tasks are ints contributing their value to the
// query's sum; tasks > split spawn two children summing to the same total, so
// queries decompose like real matching work.
func sumPool(t *testing.T, opts Options) *Pool[int, int64] {
	t.Helper()
	p, err := NewPool[int, int64](opts, func(tc *TaskContext[int], task int) int64 {
		if task > 4 {
			half := task / 2
			tc.Spawn(half, task-half)
			return 0
		}
		return int64(task)
	}, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestPoolCompletesAcrossPolicies(t *testing.T) {
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			p := sumPool(t, Options{Workers: 4, Policy: pol})
			defer p.Close()
			var tickets []*Ticket[int64]
			for i := 1; i <= 20; i++ {
				tk, err := p.Submit(JobSpec[int, int64]{Roots: []int{i * 7}, Cost: int64(i * 7), Weight: 1 + i%3})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				tickets = append(tickets, tk)
			}
			for i, tk := range tickets {
				got, err := tk.Wait()
				if err != nil || got != int64((i+1)*7) {
					t.Fatalf("query %d: got (%d, %v), want (%d, nil)", i, got, err, (i+1)*7)
				}
			}
			m := p.Metrics()
			if m.Admitted != 20 || m.Completed != 20 || m.Rejected != 0 {
				t.Fatalf("metrics: %+v", m)
			}
		})
	}
}

func TestPoolEmptyRootsCompleteImmediately(t *testing.T) {
	p := sumPool(t, Options{Workers: 1})
	defer p.Close()
	tk, err := p.Submit(JobSpec[int, int64]{Initial: 42})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got, err := tk.Wait(); got != 42 || err != nil {
		t.Fatalf("got (%d, %v)", got, err)
	}
}

func TestPoolQueueFullSheds(t *testing.T) {
	gate := make(chan struct{})
	p, err := NewPool[int, int64](Options{Workers: 1, QueueLimit: 1},
		func(tc *TaskContext[int], task int) int64 { <-gate; return int64(task) },
		func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer p.Close()
	tk, err := p.Submit(JobSpec[int, int64]{Roots: []int{1}})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := p.Submit(JobSpec[int, int64]{Roots: []int{2}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit: %v, want ErrQueueFull", err)
	}
	close(gate)
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if m := p.Metrics(); m.Rejected != 1 || m.Admitted != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPoolSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	p := sumPool(t, Options{Workers: 2})
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := p.Submit(JobSpec[int, int64]{Roots: []int{1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestPoolCancelReturnsPartialWithErrCanceled(t *testing.T) {
	// tasks spawn children forever until aborted: the query can only end by
	// cancellation, making the terminal state deterministic
	started := make(chan struct{})
	var once sync.Once
	p, err := NewPool[int, int64](Options{Workers: 2},
		func(tc *TaskContext[int], task int) int64 {
			once.Do(func() { close(started) })
			if !tc.Aborted() {
				tc.Spawn(task + 1)
			}
			return 1
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer p.Close()
	tk, err := p.Submit(JobSpec[int, int64]{Roots: []int{0}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started // at least one task's partial is merged before we cancel
	tk.Cancel()
	got, werr := tk.Wait()
	if !errors.Is(werr, ErrCanceled) {
		t.Fatalf("wait err %v, want ErrCanceled", werr)
	}
	if got < 1 {
		t.Fatalf("partial result %d, want >= 1 merged task", got)
	}
	if m := p.Metrics(); m.Canceled != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPoolDeadlineExpiry(t *testing.T) {
	lc := NewLogicalClock(time.Unix(0, 0))
	p, err := NewPool[int, int64](Options{Workers: 2, Clock: lc.Clock()},
		func(tc *TaskContext[int], task int) int64 {
			if !tc.Aborted() {
				tc.Spawn(task + 1) // unbounded: only expiry can terminate it
			}
			return 1
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer p.Close()
	tk, err := p.Submit(JobSpec[int, int64]{Roots: []int{0}, Deadline: time.Second})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lc.Advance(2 * time.Second)
	if _, werr := tk.Wait(); !errors.Is(werr, ErrDeadlineExceeded) {
		t.Fatalf("wait err %v, want ErrDeadlineExceeded", werr)
	}
	if m := p.Metrics(); m.Expired != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if tk.Latency() < 2*time.Second {
		t.Fatalf("logical latency %v, want >= 2s", tk.Latency())
	}
}

// TestPoolConcurrentSubmitCancelClose is the race-detector workout: many
// goroutines submit, a fraction cancel concurrently, Close races with the
// tail of the submissions. Every ticket must reach a coherent terminal state
// and the metrics must balance.
func TestPoolConcurrentSubmitCancelClose(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := sumPool(t, Options{Workers: workers, Policy: ShortestRemaining})
			const n = 60
			var wg sync.WaitGroup
			tickets := make([]*Ticket[int64], n)
			errs := make([]error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tk, err := p.Submit(JobSpec[int, int64]{Roots: []int{50 + i}, Cost: int64(50 + i)})
					tickets[i], errs[i] = tk, err
					if err == nil && i%3 == 0 {
						tk.Cancel()
					}
				}(i)
			}
			wg.Wait()
			if err := p.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			var terminal int64
			for i, tk := range tickets {
				if errs[i] != nil {
					t.Fatalf("submit %d failed: %v", i, errs[i])
				}
				want := int64(50 + i)
				got, err := tk.Wait()
				switch {
				case err == nil:
					if got != want {
						t.Fatalf("query %d: got %d want %d", i, got, want)
					}
				case errors.Is(err, ErrCanceled):
					if got > want {
						t.Fatalf("query %d: partial %d exceeds total %d", i, got, want)
					}
				default:
					t.Fatalf("query %d: unexpected error %v", i, err)
				}
				terminal++
			}
			m := p.Metrics()
			if m.Admitted != n || m.Completed+m.Canceled != n {
				t.Fatalf("metrics don't balance: %+v", m)
			}
			_ = terminal
		})
	}
}

func TestBatcherAnswersAligned(t *testing.T) {
	b, err := NewBatcher[int, int](Options{Batch: 4}, func(batch []int) ([]int, error) {
		out := make([]int, len(batch))
		for i, q := range batch {
			out[i] = q * q
		}
		return out, nil
	})
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	defer b.Close()
	var tickets []*Ticket[int]
	for i := 1; i <= 10; i++ {
		tk, err := b.Submit(Request[int]{Query: i})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	b.Drain()
	for i, tk := range tickets {
		got, err := tk.Wait()
		if err != nil || got != (i+1)*(i+1) {
			t.Fatalf("query %d: got (%d, %v)", i, got, err)
		}
	}
	if m := b.Metrics(); m.Completed != 10 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestBatcherCancelAndExpireReapedAtWindow(t *testing.T) {
	lc := NewLogicalClock(time.Unix(0, 0))
	gate := make(chan struct{})
	first := true
	b, err := NewBatcher[int, int](Options{Clock: lc.Clock(), Batch: 1}, func(batch []int) ([]int, error) {
		if first {
			first = false
			<-gate // hold the loop so later submissions stay queued
		}
		return make([]int, len(batch)), nil
	})
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	defer b.Close()
	t1, err := b.Submit(Request[int]{Query: 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// block until the loop has taken t1 into its batch so t2/t3 stay queued
	for {
		b.mu.Lock()
		inflight := b.inflight
		b.mu.Unlock()
		if inflight == 1 {
			break
		}
		runtime.Gosched()
	}
	t2, err := b.Submit(Request[int]{Query: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	t3, err := b.Submit(Request[int]{Query: 3, Deadline: time.Second})
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	t2.Cancel()
	lc.Advance(2 * time.Second)
	close(gate)
	if _, werr := t1.Wait(); werr != nil {
		t.Fatalf("t1: %v", werr)
	}
	if _, werr := t2.Wait(); !errors.Is(werr, ErrCanceled) {
		t.Fatalf("t2: %v, want ErrCanceled", werr)
	}
	if _, werr := t3.Wait(); !errors.Is(werr, ErrDeadlineExceeded) {
		t.Fatalf("t3: %v, want ErrDeadlineExceeded", werr)
	}
	m := b.Metrics()
	if m.Canceled != 1 || m.Expired != 1 || m.Completed != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestBatcherQueueFullAndClosed(t *testing.T) {
	gate := make(chan struct{})
	b, err := NewBatcher[int, int](Options{QueueLimit: 1}, func(batch []int) ([]int, error) {
		<-gate
		return make([]int, len(batch)), nil
	})
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	if _, err := b.Submit(Request[int]{Query: 1}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := b.Submit(Request[int]{Query: 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 2: %v, want ErrQueueFull", err)
	}
	close(gate)
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := b.Submit(Request[int]{Query: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if m := b.Metrics(); m.Rejected != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestBatcherRunErrorFailsTickets(t *testing.T) {
	boom := errors.New("boom")
	b, err := NewBatcher[int, int](Options{}, func(batch []int) ([]int, error) { return nil, boom })
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	defer b.Close()
	tk, err := b.Submit(Request[int]{Query: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, werr := tk.Wait(); !errors.Is(werr, boom) {
		t.Fatalf("wait: %v, want boom", werr)
	}
	if m := b.Metrics(); m.Failed != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, pol := range Policies {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("round-trip %v: (%v, %v)", pol, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("ParsePolicy(nope): %v", err)
	}
	if _, err := NewPool[int, int](Options{Policy: Policy(99)},
		func(tc *TaskContext[int], task int) int { return 0 },
		func(a, b int) int { return 0 }); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("NewPool bad policy: %v", err)
	}
}

func TestFairBefore(t *testing.T) {
	// served/weight ratios: 2/1=2 vs 3/2=1.5 — the second is more underserved
	if fairBefore(2, 1, 3, 2) {
		t.Fatal("2/1 should not come before 3/2")
	}
	if !fairBefore(3, 2, 2, 1) {
		t.Fatal("3/2 should come before 2/1")
	}
}

func TestLogicalClock(t *testing.T) {
	base := time.Unix(100, 0)
	lc := NewLogicalClock(base)
	if !lc.Now().Equal(base) {
		t.Fatalf("now: %v", lc.Now())
	}
	lc.Advance(time.Minute)
	lc.Advance(-time.Hour) // ignored: logical time never rewinds
	if got := lc.Now(); !got.Equal(base.Add(time.Minute)) {
		t.Fatalf("after advance: %v", got)
	}
}
