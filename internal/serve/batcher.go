package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Batcher is the batch-shared execution substrate behind the Quegel-shaped
// engines: admitted queries accumulate in a window and a serving loop folds
// them into shared runs (one superstep sequence serving the whole batch —
// Quegel's superstep-sharing), completing every ticket in the batch at once.
//
// Batcher[Q, A] itself implements Engine[Q, A]; engines wrap it to add
// payload validation. The Policy orders queries INTO batches: FIFO and
// RoundRobin admit in arrival order (inside one shared run all members
// progress together anyway), ShortestRemaining admits cheapest-estimate
// first, WeightedFair heaviest weight first — the distinction matters when
// Options.Batch caps the window and queries compete for the next run.
type Batcher[Q, A any] struct {
	opts  Options
	clock Clock
	run   func(batch []Q) ([]A, error)

	ctr    counters
	nextID atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*bitem[Q, A]
	inflight int
	closing  bool
	closed   bool
	wg       sync.WaitGroup
}

// bitem is one queued query awaiting a batch.
type bitem[Q, A any] struct {
	query  Q
	ticket *Ticket[A]
	cost   int64
	seq    int64 // admission order
}

// NewBatcher starts a batch engine whose shared runs are executed by run
// (answers must be positionally aligned with the batch). Returns
// ErrInvalidRequest for a nil run or an unknown policy.
func NewBatcher[Q, A any](opts Options, run func(batch []Q) ([]A, error)) (*Batcher[Q, A], error) {
	if run == nil {
		return nil, ErrInvalidRequest
	}
	if !opts.Policy.valid() {
		return nil, ErrInvalidRequest
	}
	b := &Batcher[Q, A]{opts: opts, clock: opts.clock(), run: run}
	b.cond = sync.NewCond(&b.mu)
	b.wg.Add(1)
	go b.loop()
	return b, nil
}

// Submit admits one query into the current batch window. ErrClosed after
// Close has begun; ErrQueueFull (metered) when QueueLimit queries are
// already queued or running.
func (b *Batcher[Q, A]) Submit(req Request[Q]) (*Ticket[A], error) {
	b.ctr.submitted.Add(1)
	now := b.clock()
	b.mu.Lock()
	if b.closing {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if b.opts.QueueLimit > 0 && len(b.queue)+b.inflight >= b.opts.QueueLimit {
		b.ctr.rejected.Add(1)
		b.mu.Unlock()
		return nil, ErrQueueFull
	}
	id := b.nextID.Add(1)
	tk := newTicket[A](id, now, b.opts.deadlineFor(req.Deadline), weightFor(req.Weight))
	b.ctr.admitted.Add(1)
	b.queue = append(b.queue, &bitem[Q, A]{query: req.Query, ticket: tk, cost: req.Cost, seq: id})
	b.cond.Broadcast()
	b.mu.Unlock()
	return tk, nil
}

// Drain blocks until every admitted query has reached a terminal state.
func (b *Batcher[Q, A]) Drain() {
	b.mu.Lock()
	for len(b.queue) > 0 || b.inflight > 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Close drains the queue, then stops the serving loop. Submit during or
// after Close returns ErrClosed. Safe to call more than once.
func (b *Batcher[Q, A]) Close() error {
	b.mu.Lock()
	b.closing = true
	for len(b.queue) > 0 || b.inflight > 0 {
		b.cond.Wait()
	}
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.wg.Wait()
	return nil
}

// Metrics returns a snapshot of the admission and completion counters.
func (b *Batcher[Q, A]) Metrics() Metrics { return b.ctr.snapshot() }

// loop is the serving loop: form a batch (reaping canceled and expired
// queries — the scheduling points where those are observed), run it, publish
// the answers.
func (b *Batcher[Q, A]) loop() {
	defer b.wg.Done()
	for {
		batch, ok := b.nextBatch()
		if !ok {
			return
		}
		queries := make([]Q, len(batch))
		for i, it := range batch {
			queries[i] = it.query
		}
		answers, err := b.run(queries)
		if err == nil && len(answers) != len(batch) {
			err = fmt.Errorf("%w: batch run returned %d answers for %d queries", ErrInvalidRequest, len(answers), len(batch))
		}
		now := b.clock()
		b.mu.Lock()
		for i, it := range batch {
			if err != nil {
				var zero A
				it.ticket.complete(zero, err, now)
				b.ctr.failed.Add(1)
				continue
			}
			it.ticket.complete(answers[i], nil, now)
			b.ctr.completed.Add(1)
		}
		b.inflight = 0
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// nextBatch blocks until queries are queued (or the batcher closes), drops
// canceled/expired ones, orders the rest under the policy and takes up to
// Options.Batch of them.
func (b *Batcher[Q, A]) nextBatch() ([]*bitem[Q, A], bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		now := b.clock()
		kept := b.queue[:0]
		for _, it := range b.queue {
			var zero A
			switch {
			case it.ticket.Canceled():
				it.ticket.complete(zero, ErrCanceled, now)
				b.ctr.canceled.Add(1)
			case it.ticket.expiredAt(now):
				it.ticket.complete(zero, ErrDeadlineExceeded, now)
				b.ctr.expired.Add(1)
			default:
				kept = append(kept, it)
			}
		}
		for i := len(kept); i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = kept
		if len(b.queue) > 0 {
			b.orderLocked()
			n := len(b.queue)
			if b.opts.Batch > 0 && b.opts.Batch < n {
				n = b.opts.Batch
			}
			batch := make([]*bitem[Q, A], n)
			copy(batch, b.queue[:n])
			rest := append(b.queue[:0], b.queue[n:]...)
			for i := len(rest); i < len(b.queue); i++ {
				b.queue[i] = nil
			}
			b.queue = rest
			b.inflight = n
			b.cond.Broadcast() // queue shrank: wake Drain/Close waiters
			return batch, true
		}
		if b.closed {
			return nil, false
		}
		b.cond.Broadcast() // queue emptied by reaping: wake Drain/Close waiters
		b.cond.Wait()
	}
}

// orderLocked sorts the window under the policy; stable on admission order,
// so every policy is deterministic.
func (b *Batcher[Q, A]) orderLocked() {
	switch b.opts.Policy {
	case ShortestRemaining:
		//lint:allow hotalloc sort comparator does not escape SliceStable, and ordering runs once per batch window, not per query
		sort.SliceStable(b.queue, func(i, k int) bool { return b.queue[i].cost < b.queue[k].cost })
	case WeightedFair:
		//lint:allow hotalloc sort comparator does not escape SliceStable, and ordering runs once per batch window, not per query
		sort.SliceStable(b.queue, func(i, k int) bool {
			return b.queue[i].ticket.weight > b.queue[k].ticket.weight
		})
	default: // FIFO / RoundRobin: admission order (seq ascending, already sorted)
	}
}
