package serve

import "fmt"

// Policy is the scheduling discipline an engine applies across in-flight
// queries. The same four policies drive the live engines (Pool task draws,
// Batcher batch ordering) and the discrete-event simulator behind
// BENCH_serving.json, so a policy's measured curve and its serving
// behaviour are the same code path ordering the same way.
type Policy int

const (
	// RoundRobin serves active queries in rotation — G-thinkerQ's per-query
	// round-robin task draw, which approximates egalitarian processor
	// sharing. The baseline.
	RoundRobin Policy = iota
	// FIFO runs queries to completion in admission order (head-of-line
	// blocking and all): the offline/sequential baseline policy.
	FIFO
	// ShortestRemaining serves the query with the least remaining estimated
	// work first (SRPT): minimises mean latency, keeps short queries ahead
	// of heavy sweeps, may starve heavy queries under overload.
	ShortestRemaining
	// WeightedFair divides service in proportion to Request.Weight
	// (weighted fair queueing over query task draws).
	WeightedFair
)

// Policies lists every policy in a fixed, reportable order.
var Policies = []Policy{RoundRobin, FIFO, ShortestRemaining, WeightedFair}

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FIFO:
		return "fifo"
	case ShortestRemaining:
		return "srw"
	case WeightedFair:
		return "wfq"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name (as printed by String) back to the Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown policy %q", ErrInvalidRequest, s)
}

// valid reports whether p is one of the defined policies.
func (p Policy) valid() bool {
	return p >= RoundRobin && p <= WeightedFair
}

// fairBefore reports whether a job with (servedA, weightA) is owed service
// before one with (servedB, weightB) under weighted fair queueing: the
// smaller served/weight ratio wins. Integer cross-multiplication avoids
// float drift in the scheduling decision.
func fairBefore(servedA int64, weightA int, servedB int64, weightB int) bool {
	return servedA*int64(weightB) < servedB*int64(weightA)
}
