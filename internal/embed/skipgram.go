package embed

import (
	"math"
	"math/rand"

	"graphsys/internal/graph"
	"graphsys/internal/tensor"
)

// SkipGramConfig controls embedding training.
type SkipGramConfig struct {
	Dim       int     // embedding dimension (default 32)
	Window    int     // context window radius (default 4)
	Negatives int     // negative samples per positive (default 5)
	LR        float64 // starting learning rate (default 0.025)
	Epochs    int     // passes over the walk corpus (default 2)
	Seed      int64
}

func (c *SkipGramConfig) defaults() {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
}

// SkipGram trains vertex embeddings with skip-gram + negative sampling
// (word2vec SGNS) over the walk corpus: for every (center, context) pair
// within the window, the dot product of the input embedding of the center
// and the output embedding of the context is pushed up, and down for
// sampled negatives. Returns the n×Dim input-embedding matrix.
func SkipGram(n int, walks [][]graph.V, cfg SkipGramConfig) *tensor.Matrix {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := tensor.New(n, cfg.Dim)
	out := tensor.New(n, cfg.Dim)
	for i := range in.Data {
		in.Data[i] = (rng.Float32() - 0.5) / float32(cfg.Dim)
	}
	// negative-sampling distribution ∝ freq^(3/4)
	freq := make([]float64, n)
	for _, w := range walks {
		for _, v := range w {
			freq[v]++
		}
	}
	var cum []float64
	var total float64
	for _, f := range freq {
		total += math.Pow(f, 0.75)
		cum = append(cum, total)
	}
	sample := func() int {
		x := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	sigmoid := func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	}
	lr := float32(cfg.LR)
	gradIn := make([]float32, cfg.Dim)
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, walk := range walks {
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				cRow := in.Row(int(center))
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					for k := range gradIn {
						gradIn[k] = 0
					}
					// positive pair + negatives
					targets := make([]int, 0, cfg.Negatives+1)
					labels := make([]float32, 0, cfg.Negatives+1)
					targets = append(targets, int(walk[j]))
					labels = append(labels, 1)
					for s := 0; s < cfg.Negatives; s++ {
						targets = append(targets, sample())
						labels = append(labels, 0)
					}
					for t, tgt := range targets {
						oRow := out.Row(tgt)
						var dot float32
						for k := range cRow {
							dot += cRow[k] * oRow[k]
						}
						g := (sigmoid(dot) - labels[t]) * lr
						for k := range cRow {
							gradIn[k] += g * oRow[k]
							oRow[k] -= g * cRow[k]
						}
					}
					for k := range cRow {
						cRow[k] -= gradIn[k]
					}
				}
			}
		}
		lr *= 0.7 // decay per epoch
	}
	return in
}

// DeepWalk is the end-to-end pipeline: uniform walks + skip-gram.
func DeepWalk(g *graph.Graph, walksPerVertex, walkLen int, cfg SkipGramConfig) *tensor.Matrix {
	walks := RandomWalks(g, walksPerVertex, walkLen, cfg.Seed+1)
	return SkipGram(g.NumVertices(), walks, cfg)
}

// Node2Vec is the end-to-end biased-walk pipeline.
func Node2Vec(g *graph.Graph, walksPerVertex, walkLen int, p, q float64, cfg SkipGramConfig) *tensor.Matrix {
	walks := Node2VecWalks(g, walksPerVertex, walkLen, p, q, cfg.Seed+1)
	return SkipGram(g.NumVertices(), walks, cfg)
}

// CosineSimilarity returns the cosine similarity between embedding rows.
func CosineSimilarity(m *tensor.Matrix, a, b int) float64 {
	ra, rb := m.Row(a), m.Row(b)
	var dot, na, nb float64
	for k := range ra {
		dot += float64(ra[k]) * float64(rb[k])
		na += float64(ra[k]) * float64(ra[k])
		nb += float64(rb[k]) * float64(rb[k])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
