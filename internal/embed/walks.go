// Package embed implements unsupervised vertex embeddings from graph
// topology — DeepWalk and node2vec random walks feeding a skip-gram model
// with negative sampling — plus access to the classic structural-feature
// baseline. These are the "vertex analytics + ML" tools of Figure 1 path 2,
// and the subjects of the paper's cited claim (Stolman et al.) that classic
// structural features can outperform factorization/embedding methods for
// community labeling, reproduced in BenchmarkClaim_StructVsEmbed.
package embed

import (
	"math/rand"

	"graphsys/internal/graph"
)

// RandomWalks generates walksPerVertex uniform random walks of length
// walkLen from every vertex (DeepWalk's corpus). Walks stop early at
// isolated vertices.
func RandomWalks(g *graph.Graph, walksPerVertex, walkLen int, seed int64) [][]graph.V {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	walks := make([][]graph.V, 0, n*walksPerVertex)
	for w := 0; w < walksPerVertex; w++ {
		for v := 0; v < n; v++ {
			walk := make([]graph.V, 0, walkLen+1)
			cur := graph.V(v)
			walk = append(walk, cur)
			for s := 0; s < walkLen; s++ {
				ns := g.Neighbors(cur)
				if len(ns) == 0 {
					break
				}
				cur = ns[rng.Intn(len(ns))]
				walk = append(walk, cur)
			}
			walks = append(walks, walk)
		}
	}
	return walks
}

// Node2VecWalks generates second-order biased walks (Grover & Leskovec):
// returning to the previous vertex is weighted 1/p, staying in the previous
// vertex's neighborhood 1, and moving outward 1/q. Small q → outward/DFS-like
// exploration; large q (and large p) → BFS-like local walks.
func Node2VecWalks(g *graph.Graph, walksPerVertex, walkLen int, p, q float64, seed int64) [][]graph.V {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	walks := make([][]graph.V, 0, n*walksPerVertex)
	for w := 0; w < walksPerVertex; w++ {
		for v := 0; v < n; v++ {
			walk := make([]graph.V, 0, walkLen+1)
			cur := graph.V(v)
			prev := graph.V(-1)
			walk = append(walk, cur)
			for s := 0; s < walkLen; s++ {
				ns := g.Neighbors(cur)
				if len(ns) == 0 {
					break
				}
				var next graph.V
				if prev < 0 {
					next = ns[rng.Intn(len(ns))]
				} else {
					// rejection sampling of the n2v transition kernel
					maxW := 1.0
					if 1/p > maxW {
						maxW = 1 / p
					}
					if 1/q > maxW {
						maxW = 1 / q
					}
					for {
						cand := ns[rng.Intn(len(ns))]
						var wgt float64
						switch {
						case cand == prev:
							wgt = 1 / p
						case g.HasEdge(prev, cand):
							wgt = 1
						default:
							wgt = 1 / q
						}
						if rng.Float64() < wgt/maxW {
							next = cand
							break
						}
					}
				}
				prev, cur = cur, next
				walk = append(walk, cur)
			}
			walks = append(walks, walk)
		}
	}
	return walks
}
