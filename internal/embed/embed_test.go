package embed

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func TestRandomWalksValid(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	walks := RandomWalks(g, 2, 10, 7)
	if len(walks) != 200 {
		t.Fatalf("walk count %d", len(walks))
	}
	for _, w := range walks {
		if len(w) != 11 {
			t.Fatalf("walk length %d (graph is connected, no early stop)", len(w))
		}
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatal("walk used a non-edge")
			}
		}
	}
}

func TestRandomWalksStopAtIsolated(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}}) // vertex 2 isolated
	walks := RandomWalks(g, 1, 5, 1)
	for _, w := range walks {
		if w[0] == 2 && len(w) != 1 {
			t.Fatalf("walk from isolated vertex has length %d", len(w))
		}
	}
}

func TestRandomWalksDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 2)
	a := RandomWalks(g, 1, 8, 42)
	b := RandomWalks(g, 1, 8, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("walks not deterministic")
			}
		}
	}
}

func TestNode2VecBias(t *testing.T) {
	// barbell-ish graph: two cliques joined by a path. With q≫1 (BFS-like)
	// walks should revisit the start clique more than with q≪1 (DFS-like).
	b := graph.NewBuilder(23, false)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	for u := 15; u < 23; u++ {
		for v := u + 1; v < 23; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	for v := 7; v < 16; v++ {
		b.AddEdge(graph.V(v), graph.V(v+1))
	}
	g := b.Build()
	countFar := func(walks [][]graph.V) int {
		far := 0
		for _, w := range walks {
			if w[0] >= 8 { // only walks starting in the first clique
				continue
			}
			for _, v := range w {
				if v >= 15 {
					far++
					break
				}
			}
		}
		return far
	}
	bfsLike := countFar(Node2VecWalks(g, 6, 12, 1, 4, 3))
	dfsLike := countFar(Node2VecWalks(g, 6, 12, 1, 0.25, 3))
	if dfsLike <= bfsLike {
		t.Fatalf("low-q walks reached the far clique %d times, high-q %d — expected more exploration with low q",
			dfsLike, bfsLike)
	}
	// walks must still be valid
	for _, w := range Node2VecWalks(g, 1, 6, 1, 1, 4) {
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatal("invalid node2vec step")
			}
		}
	}
}

func TestDeepWalkEmbeddingsSeparateCommunities(t *testing.T) {
	c := gen.PlantedPartitionSparse(120, 2, 12, 0.5, 5)
	emb := DeepWalk(c.Graph, 6, 20, SkipGramConfig{Dim: 16, Epochs: 3, Seed: 9})
	// average intra-community cosine similarity should exceed inter
	var intra, inter float64
	var ni, nx int
	for a := 0; a < 120; a += 3 {
		for b := a + 1; b < 120; b += 7 {
			s := CosineSimilarity(emb, a, b)
			if c.Membership[a] == c.Membership[b] {
				intra += s
				ni++
			} else {
				inter += s
				nx++
			}
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if intra <= inter {
		t.Fatalf("intra-community similarity %.3f not above inter %.3f", intra, inter)
	}
}

func TestSkipGramShapesAndDeterminism(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 1)
	e1 := DeepWalk(g, 2, 8, SkipGramConfig{Dim: 8, Seed: 5})
	e2 := DeepWalk(g, 2, 8, SkipGramConfig{Dim: 8, Seed: 5})
	if e1.Rows != 40 || e1.Cols != 8 {
		t.Fatalf("embedding shape %dx%d", e1.Rows, e1.Cols)
	}
	for i := range e1.Data {
		if e1.Data[i] != e2.Data[i] {
			t.Fatal("embeddings not deterministic")
		}
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	g := gen.Clique(10)
	emb := DeepWalk(g, 2, 5, SkipGramConfig{Dim: 4, Seed: 1})
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			s := CosineSimilarity(emb, a, b)
			if s < -1.0001 || s > 1.0001 {
				t.Fatalf("cosine out of range: %f", s)
			}
		}
	}
	if s := CosineSimilarity(emb, 3, 3); s < 0.999 {
		t.Fatalf("self-similarity %f", s)
	}
}
